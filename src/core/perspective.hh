/**
 * @file
 * PerspectivePolicy: the hardware protection mechanism of Perspective,
 * plugged into the pipeline through the pliable SpeculationPolicy
 * interface.
 *
 * For every speculative kernel-mode transmitter the policy performs:
 *
 *  1. the ISV check — is the *instruction* inside the context's
 *     instruction speculation view? (ISV cache; miss -> block and
 *     fill through the TLB path);
 *  2. the DSV check — is the accessed *data page* inside the
 *     context's data speculation view? (DSVMT cache; miss -> block
 *     and fill; unknown-provenance memory always blocks).
 *
 * Blocked instructions stall until their Visibility Point, exactly
 * the fence semantics of Section 6.2. Userspace execution and non-
 * speculative accesses are never affected.
 *
 * Pliability at runtime (the dynamic-update story): views are live
 * data, not boot-time constants. Three update flows are modeled:
 *
 *  - ISV extension (module / eBPF load): the view object mutates and
 *    its epoch ticks; blocked loads re-gate through the epoch wake
 *    dependency and running contexts resync at their next check.
 *  - DSV revocation (free / realloc ownership handoff): with
 *    revocationLatency > 0 the shootdown is deferred — the DSV cache
 *    and the DSVMT mirrors keep the *old* verdict until the pending
 *    revocation drains, modeling the transient window in which an
 *    in-flight speculative load can still read the revoked frame.
 *    The window length is exported as "transient_gap_cycles" and
 *    loads allowed on a stale verdict as "revocation.stale_allows".
 *  - Fleet flip (admin tightens enforcement system-wide, DEXCR
 *    style): fleetTighten ORs aspect bits in; each context syncs the
 *    effective value at its first gate check past the flip's
 *    visibility point, dropping its cached verdicts.
 */

#ifndef PERSPECTIVE_CORE_PERSPECTIVE_HH
#define PERSPECTIVE_CORE_PERSPECTIVE_HH

#include <string>
#include <unordered_map>
#include <vector>

#include "dsvmt.hh"
#include "hwcache.hh"
#include "isv.hh"
#include "kernel/ownership.hh"
#include "sim/leakage.hh"
#include "sim/policy.hh"

namespace perspective::core
{

/** Feature toggles (sensitivity analyses flip these). */
struct PerspectiveConfig
{
    bool enableIsv = true;
    bool enableDsv = true;
    /** Block speculative access to unknown allocations (Section 9.2
     * quantifies the cost of keeping this on). */
    bool blockUnknown = true;
    /** ISV/DSV cache refill latency (TLB + L2 access). */
    sim::Cycle fillLatency = 14;
    /** Hardware lookup structure geometry (Table 7.1 defaults). */
    unsigned isvCacheEntries = 128;
    unsigned dsvCacheEntries = 128;
    unsigned cacheAssoc = 4;
    /** Untagged-structure emulation: flush the ISV/DSV caches on
     * every context switch. Section 6.2 tags entries with the ASID
     * precisely to avoid this; the ablation quantifies the win. */
    bool flushOnContextSwitch = false;
    /** Cycles between an ownership change (free / realloc handoff)
     * and its DSV shootdown landing. 0 keeps the legacy synchronous
     * listener (caches and mirrors update in the same event);
     * nonzero opens the mid-flight revocation window the pliability
     * scenarios race. Requires setClock() to take effect. */
    sim::Cycle revocationLatency = 0;
};

/** @name Modeled fleet-flip latency
 * Cycle cost of an admin system-wide enforcement flip: a base (sysfs
 * write + broadcast IPI) plus per-registered-context resync work.
 * @{ */
inline constexpr sim::Cycle kFleetFlipBase = 240;
inline constexpr sim::Cycle kFleetFlipPerContext = 60;
/** @} */

/** The Perspective hardware mechanism. */
class PerspectivePolicy : public sim::SpeculationPolicy
{
  public:
    /**
     * @param ownership ground-truth frame ownership (the in-memory
     *        DSVMT contents); the policy registers an invalidation
     *        listener, so it must not outlive @p ownership.
     */
    PerspectivePolicy(kernel::OwnershipMap &ownership,
                      PerspectiveConfig cfg = {},
                      std::string name = "perspective");
    /** Deregisters the ownership listener: short-lived policies (the
     * attack races lease one per run) must not leave a dangling
     * this-capture behind in the map. */
    ~PerspectivePolicy() override;
    PerspectivePolicy(const PerspectivePolicy &) = delete;
    PerspectivePolicy &operator=(const PerspectivePolicy &) = delete;

    /**
     * Associate an execution context: its ASID, its ownership domain
     * (DSV), and its instruction speculation view (may be null when
     * running DSV-only configurations).
     */
    void registerContext(sim::Asid asid, kernel::DomainId domain,
                         const IsvView *isv);

    sim::Gate gateLoad(const sim::SpecContext &ctx) override;
    sim::GateWake gateWake(const sim::SpecContext &ctx) override;

    /** Accounting-free ISV/DSV cache warming for sampled simulation's
     * functional phases (DESIGN §5.8): fills the same entries a
     * gateLoad at @p ctx would, with ready-at-0 latency, without
     * touching counters, histograms, burst runs or the wake slot. */
    void warmAccess(const sim::SpecContext &ctx) override;

    void setStats(sim::StatSet *stats) override;
    const char *name() const override { return name_.c_str(); }

    IsvCache &isvCache() { return isvCache_; }
    DsvCache &dsvCache() { return dsvCache_; }

    /**
     * Per-domain DSVMT mirror (kept in sync with ownership). Fails
     * loudly on a domain no context was ever registered for — the
     * old accessor default-inserted an empty tree, silently answering
     * "nothing is in the DSV" for a typo'd domain.
     * @throws std::out_of_range when @p domain has no mirror.
     */
    const Dsvmt &dsvmtOf(kernel::DomainId domain) const;

    /** Ground-truth DSV membership for @p va under @p domain. */
    bool inDsv(sim::Addr va, kernel::DomainId domain) const;

    const PerspectiveConfig &config() const { return cfg_; }

    /** Wire the pipeline cycle counter; timestamps deferred
     * revocations and fleet flips. Null (the default) keeps every
     * update path synchronous. */
    void setClock(const sim::Cycle *cycle) { clock_ = cycle; }

    /** @name Dynamic updates
     * @{ */

    /** Admin fleet flip: OR @p aspect_bits (kernel/fleet.hh) into the
     * system-wide enforcement value. @p admin_isv, when given, is the
     * view intersected into ISV fills under kFleetRestrictIsv; it
     * must outlive the policy. Returns the modeled flip latency
     * (sampled into "update_latency"); contexts observe the new value
     * at their first gate check past now + that latency. */
    sim::Cycle fleetTighten(std::uint32_t aspect_bits,
                            const IsvView *admin_isv = nullptr);

    std::uint32_t fleetBits() const { return fleetBits_; }

    /** Sample one modeled view-update latency into the
     * "update_latency" sweep histogram (ISV extension flows compute
     * theirs via isvUpdateLatency and report it here). */
    void noteUpdateLatency(sim::Cycle latency);

    /** Revocations scheduled but not yet landed (the open window). */
    std::size_t pendingRevocations() const { return pending_.size(); }

    /** Fast-forward is deferred while a revocation window is open:
     * landing is driven by gate checks against the clock, and the
     * conservative contract (DESIGN §5.5) keeps the detailed path in
     * charge whenever dynamic-update state is in flight. */
    bool
    allowFastForward() const override
    {
        return pending_.empty();
    }

    /**
     * Which dynamic-update window (if any) is open for @p va in the
     * context registered under @p asid — the leakage ledger's
     * attribution hook (DESIGN §5.6). Pure lookup, no side effects:
     * a pending revocation covering @p va's frame wins, then an
     * unsynced fleet flip, then an unsynced ISV epoch; Baseline means
     * "no open window explains a stale allow".
     */
    sim::LeakWindow updateWindow(sim::Addr va, sim::Asid asid) const;

    /** Land every pending revocation immediately (window closed by
     * fiat — used by tests and at end-of-scenario barriers). */
    void flushPendingRevocations();

    /** @} */

    /** @name Single-slot wake-contract hardening
     * gateWake must be called immediately after a Block verdict with
     * the same context — lastWake_ is a single slot and any
     * interleaving hands the wrong wake spec to a blocked load.
     * Every Block arms a pairing token; gateWake asserts it matches
     * (debug builds) and these accessors let tests check it in every
     * build.
     * @{ */
    bool wakePairingMatches(const sim::SpecContext &ctx) const
    {
        return wakeArmed_ && ctx.pc == wakePc_ &&
               ctx.dataVa == wakeVa_;
    }
    std::uint64_t wakeSeq() const { return wakeSeq_; }
    /** @} */

    /** Aggregate DSVMT walk MRU-granule telemetry over every
     * per-domain mirror (the hardware fill path walks the mirror,
     * so these count real DSV-fill traffic). */
    std::uint64_t dsvmtMruHits() const;
    std::uint64_t dsvmtMruLookups() const;
    void resetDsvmtMruStats();

    /** Lookup-structure and context checkpoint. The ownership
     * listener wired at construction is identity, not state, and
     * survives restore untouched. */
    struct Snapshot;

    Snapshot snapshot() const;
    void restore(const Snapshot &s);

  private:
    struct Context
    {
        kernel::DomainId domain = kernel::kDomainUnknown;
        const IsvView *isv = nullptr;
        std::uint64_t isvEpochSeen = 0;
        /** Fleet generation this context last synchronized with (the
         * per-task DEXCR copy; 0 = boot value). */
        std::uint64_t fleetSeen = 0;
    };

    /** One deferred DSV shootdown (ownership already changed in the
     * kernel; caches and mirrors still hold the old verdict). */
    struct PendingRevocation
    {
        kernel::Pfn pfn = 0;
        sim::Cycle revokedAt = 0;
        sim::Cycle applyAt = 0;
    };

    kernel::OwnershipMap &ownership_;
    kernel::OwnershipMap::ListenerId listenerId_ = 0;
    PerspectiveConfig cfg_;
    std::string name_;
    IsvCache isvCache_;
    DsvCache dsvCache_;
    std::unordered_map<sim::Asid, Context> contexts_;
    std::unordered_map<kernel::DomainId, Dsvmt> dsvmts_;
    sim::Asid lastAsid_ = 0;

    /** Ticks whenever the context table changes (registerContext /
     * restore) or a fleet flip is requested; wakes loads blocked on
     * an unregistered ASID or a pre-flip verdict. */
    std::uint64_t contextsGen_ = 0;

    /** One-entry MRU over contexts_ — gateLoad resolves the same
     * ASID for every load of a run. Pointers into unordered_map
     * nodes are stable; the MRU is dropped whenever the table can
     * change (registerContext / restore). */
    sim::Asid ctxMruAsid_ = 0;
    Context *ctxMruCtx_ = nullptr;
    Dsvmt *ctxMruTree_ = nullptr;

    /** Wake spec of the most recent Block verdict (see gateWake). */
    sim::GateWake lastWake_;

    // Pairing token for the single-slot wake contract: armed on
    // every Block, consumed (and checked) by gateWake.
    std::uint64_t wakeSeq_ = 0;
    bool wakeArmed_ = false;
    sim::Addr wakePc_ = 0;
    sim::Addr wakeVa_ = 0;

    // Dynamic-update state.
    const sim::Cycle *clock_ = nullptr;
    std::vector<PendingRevocation> pending_;
    std::uint32_t fleetBits_ = 0;
    std::uint64_t fleetGen_ = 0;
    sim::Cycle fleetFlipAt_ = 0;
    sim::Cycle fleetVisibleAt_ = 0;
    const IsvView *adminIsv_ = nullptr;

    // Cached hot-path counter handles (resolved in setStats).
    sim::Counter ctrUnregistered_;
    sim::Counter ctrIsvFence_;
    sim::Counter ctrIsvMiss_;
    sim::Counter ctrDsvFence_;
    sim::Counter ctrDsvMiss_;

    /** DSV-cache refill value for @p va under context @p c: walk the
     * domain's DSVMT mirror (MRU-cached), falling back to the
     * ownership ground truth when no mirror exists. During an open
     * revocation window the mirror deliberately answers with the
     * pre-handoff verdict. */
    bool dsvFillValue(sim::Addr va, const Context &c);

    /** Effective blockUnknown: the static config OR'd with a synced
     * fleet enforcement (a context only observes the fleet value it
     * has synchronized with). */
    bool effBlockUnknown(const Context &c) const;

    /** Land one pending revocation: shoot down the cached page and
     * refresh every mirror from current ownership; samples the
     * realized window into "transient_gap_cycles". */
    void applyRevocation(const PendingRevocation &r, sim::Cycle now);
    void drainRevocations(sim::Cycle now);

    /** Arm the wake pairing token for a Block verdict on @p ctx. */
    void
    noteBlock(const sim::SpecContext &ctx)
    {
        ++wakeSeq_;
        wakeArmed_ = true;
        wakePc_ = ctx.pc;
        wakeVa_ = ctx.dataVa;
    }

    /** Record a miss (or a run-ending hit) on one view cache and
     * sample completed burst lengths into @p hist_name. */
    void noteMiss(std::uint64_t &run) { ++run; }
    void noteHit(std::uint64_t &run, const char *hist_name);

    // Current consecutive-miss run length per view cache; a hit
    // closes the run and samples it into the burst histogram.
    std::uint64_t isvMissRun_ = 0;
    std::uint64_t dsvMissRun_ = 0;
};

struct PerspectivePolicy::Snapshot
{
    IsvCache isvCache;
    DsvCache dsvCache;
    std::unordered_map<sim::Asid, Context> contexts;
    std::unordered_map<kernel::DomainId, Dsvmt> dsvmts;
    sim::Asid lastAsid = 0;
    std::uint64_t isvMissRun = 0;
    std::uint64_t dsvMissRun = 0;
    std::vector<PendingRevocation> pending;
    std::uint32_t fleetBits = 0;
    std::uint64_t fleetGen = 0;
    sim::Cycle fleetFlipAt = 0;
    sim::Cycle fleetVisibleAt = 0;
    const IsvView *adminIsv = nullptr;
};

inline PerspectivePolicy::Snapshot
PerspectivePolicy::snapshot() const
{
    return {isvCache_,   dsvCache_,   contexts_,      dsvmts_,
            lastAsid_,   isvMissRun_, dsvMissRun_,    pending_,
            fleetBits_,  fleetGen_,   fleetFlipAt_,   fleetVisibleAt_,
            adminIsv_};
}

inline void
PerspectivePolicy::restore(const Snapshot &s)
{
    isvCache_ = s.isvCache;
    dsvCache_ = s.dsvCache;
    contexts_ = s.contexts;
    dsvmts_ = s.dsvmts;
    lastAsid_ = s.lastAsid;
    isvMissRun_ = s.isvMissRun;
    dsvMissRun_ = s.dsvMissRun;
    pending_ = s.pending;
    fleetBits_ = s.fleetBits;
    fleetGen_ = s.fleetGen;
    fleetFlipAt_ = s.fleetFlipAt;
    fleetVisibleAt_ = s.fleetVisibleAt;
    adminIsv_ = s.adminIsv;
    // Restore happens between runs (empty ROB — no blocked load holds
    // a stale wake snapshot), but the MRU pointers now dangle.
    ctxMruCtx_ = nullptr;
    ctxMruTree_ = nullptr;
    wakeArmed_ = false;
    ++contextsGen_;
}

} // namespace perspective::core

#endif // PERSPECTIVE_CORE_PERSPECTIVE_HH
