/**
 * @file
 * Data Speculation View Metadata Table (DSVMT, Section 6.2).
 *
 * The in-memory structure the DSV cache fills from: a per-domain
 * three-level radix tree over the direct map supporting the three
 * contemporary page sizes (4 KB leaf bits, 2 MB and 1 GB aggregate
 * entries). Leaf entries are a single bit: "does this page belong to
 * the domain's DSV". PerspectivePolicy keeps one DSVMT per domain in
 * sync with the OwnershipMap.
 */

#ifndef PERSPECTIVE_CORE_DSVMT_HH
#define PERSPECTIVE_CORE_DSVMT_HH

#include <array>
#include <cstdint>
#include <unordered_map>

#include "kernel/types.hh"
#include "sim/types.hh"

namespace perspective::core
{

/** One domain's three-level DSV metadata tree. */
class Dsvmt
{
  public:
    /** Mark the 4 KB page @p pfn as in/out of the DSV. */
    void setPage(kernel::Pfn pfn, bool in_dsv);

    /** Promote an aligned 2 MB region (512 pages) wholesale. */
    void set2M(kernel::Pfn first_pfn, bool in_dsv);

    /** Promote an aligned 1 GB region wholesale. */
    void set1G(kernel::Pfn first_pfn, bool in_dsv);

    /** Query a direct-map VA. */
    bool queryVa(sim::Addr va) const;
    bool queryPfn(kernel::Pfn pfn) const;

    /** Number of radix levels a hardware walk of @p pfn touches
     * (1 for a 1 GB hit, 2 for 2 MB, 3 for a leaf). */
    unsigned walkLevels(kernel::Pfn pfn) const;

    /** Approximate resident size of the tree in bytes (for the
     * memory-overhead characterization). */
    std::size_t memoryBytes() const;

    void clear();

  private:
    /** 512 leaf bits covering one 2 MB granule. */
    using Leaf = std::array<std::uint64_t, 8>;

    static std::uint64_t granuleOf(kernel::Pfn pfn)
    {
        return pfn >> 9;
    }
    static std::uint64_t gigOf(kernel::Pfn pfn) { return pfn >> 18; }

    std::unordered_map<std::uint64_t, Leaf> leaves_;   // by granule
    std::unordered_map<std::uint64_t, bool> huge2m_;   // by granule
    std::unordered_map<std::uint64_t, bool> huge1g_;   // by gig
};

} // namespace perspective::core

#endif // PERSPECTIVE_CORE_DSVMT_HH
