/**
 * @file
 * Data Speculation View Metadata Table (DSVMT, Section 6.2).
 *
 * The in-memory structure the DSV cache fills from: a per-domain
 * radix table over the direct map supporting the three contemporary
 * page sizes (4 KB leaf bits, 2 MB and 1 GB aggregate entries). Leaf
 * entries are a single bit: "does this page belong to the domain's
 * DSV". PerspectivePolicy keeps one DSVMT per domain in sync with the
 * OwnershipMap.
 *
 * The table is index-addressed rather than hashed: a top-level vector
 * keyed by 1 GB region holds, per region, 512 granule slots (leaf
 * index + 2 MB state) — so a query is two array indexes and at most
 * one bit test. A one-entry MRU granule cache short-circuits the walk
 * entirely for the common case of consecutive probes into the same
 * 2 MB granule; its hit rate is exported as simulator telemetry. The
 * original hash-map implementation survives as `DsvmtRef`
 * (views_ref.hh), the oracle for the differential fuzz test.
 */

#ifndef PERSPECTIVE_CORE_DSVMT_HH
#define PERSPECTIVE_CORE_DSVMT_HH

#include <array>
#include <cstdint>
#include <vector>

#include "kernel/types.hh"
#include "sim/types.hh"

namespace perspective::core
{

/** One domain's three-level DSV metadata tree. */
class Dsvmt
{
  public:
    /** Mark the 4 KB page @p pfn as in/out of the DSV. */
    void setPage(kernel::Pfn pfn, bool in_dsv);

    /** Promote an aligned 2 MB region (512 pages) wholesale,
     * replacing any leaf it previously held. */
    void set2M(kernel::Pfn first_pfn, bool in_dsv);

    /** Promote an aligned 1 GB region wholesale, replacing every
     * leaf and 2 MB entry beneath it (newest installation wins; a
     * later setPage/set2M re-demotes). */
    void set1G(kernel::Pfn first_pfn, bool in_dsv);

    /** Query a direct-map VA. */
    bool queryVa(sim::Addr va) const;
    bool queryPfn(kernel::Pfn pfn) const;

    /** Number of radix levels a hardware walk of @p pfn touches
     * (1 for a 1 GB hit, 2 for 2 MB, 3 for a leaf). */
    unsigned walkLevels(kernel::Pfn pfn) const;

    /** Approximate resident size of the tree in bytes (for the
     * memory-overhead characterization): live leaves at
     * sizeof(Leaf), live 2 MB / 1 GB entries at 8 bytes each. */
    std::size_t memoryBytes() const;

    void clear();

    /** MRU granule-cache telemetry (queryPfn/queryVa probes). */
    std::uint64_t mruHits() const { return mruHits_; }
    std::uint64_t mruLookups() const { return mruLookups_; }
    void resetMruStats() const { mruHits_ = mruLookups_ = 0; }

  private:
    /** 512 leaf bits covering one 2 MB granule. */
    using Leaf = std::array<std::uint64_t, 8>;

    /** Tri-state huge entry: distinguishes "no entry installed"
     * from an installed entry mapping the region out of the DSV. */
    enum class HugeState : std::uint8_t { Absent, Out, In };

    static constexpr std::uint32_t kNoLeaf = 0xffffffffu;
    static constexpr std::uint64_t kNoGranule = ~0ull;

    /** One 1 GB region: 512 granule slots plus the region entry. */
    struct GigNode
    {
        std::array<std::uint32_t, 512> leaf; ///< leafPool_ index
        std::array<HugeState, 512> huge2m;
        HugeState huge1g = HugeState::Absent;
        std::uint32_t liveLeaves = 0;
        std::uint32_t live2m = 0;

        GigNode()
        {
            leaf.fill(kNoLeaf);
            huge2m.fill(HugeState::Absent);
        }
    };

    static std::uint64_t granuleOf(kernel::Pfn pfn)
    {
        return pfn >> 9;
    }
    static std::uint64_t gigOf(kernel::Pfn pfn) { return pfn >> 18; }

    GigNode &gigFor(std::uint64_t gig);
    const GigNode *gigAt(std::uint64_t gig) const
    {
        return gig < gigs_.size() ? &gigs_[gig] : nullptr;
    }
    std::uint32_t allocLeaf();
    void freeLeaf(GigNode &g, unsigned slot);
    bool resolveNoLeaf(const GigNode *g, unsigned slot) const;
    void invalidateMru() const { mruGranule_ = kNoGranule; }

    std::vector<GigNode> gigs_; ///< indexed by pfn >> 18
    std::vector<Leaf> leafPool_;
    std::vector<std::uint32_t> leafFree_;

    // One-entry MRU granule cache: the resolution of the last
    // queried granule (leaf index, or the constant huge-entry
    // verdict when no leaf shadows it). Mutations invalidate it.
    mutable std::uint64_t mruGranule_ = kNoGranule;
    mutable std::uint32_t mruLeaf_ = kNoLeaf;
    mutable bool mruNoLeafValue_ = false;
    mutable std::uint64_t mruHits_ = 0;
    mutable std::uint64_t mruLookups_ = 0;
};

} // namespace perspective::core

#endif // PERSPECTIVE_CORE_DSVMT_HH
