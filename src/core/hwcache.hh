/**
 * @file
 * Perspective's two hardware lookup structures (Section 6.2,
 * Table 7.1): the ISV cache and the DSVMT (DSV) cache. Both are
 * 128-entry, 32-set, 4-way, tagged with the ASID so context switches
 * need no flush. On a miss the pipeline conservatively blocks
 * speculation while the fill happens in the background; replacement
 * state is only updated once the instruction reaches its Visibility
 * Point (modeled by the deferLru flag on lookups).
 */

#ifndef PERSPECTIVE_CORE_HWCACHE_HH
#define PERSPECTIVE_CORE_HWCACHE_HH

#include <array>
#include <cstdint>
#include <vector>

#include "sim/types.hh"

namespace perspective::core
{

/** Result of an ISV/DSV cache lookup. */
struct HwLookup
{
    bool hit = false;
    bool allow = false; ///< valid only when hit
    /** When a matching entry's fill is still in flight (the lookup
     * reported a miss because now < ready_at), the cycle the entry
     * becomes usable; 0 otherwise. Lets a blocked load schedule its
     * re-evaluation instead of polling. */
    sim::Cycle readyAt = 0;
};

/** ISV bits one cache entry carries (a 512-byte code region — 128
 * instructions). The paper's 57-bit entry is the tag/ASID metadata;
 * the payload array rides alongside. */
struct IsvRegionBits
{
    std::array<std::uint64_t, 2> bits{};

    bool
    test(unsigned i) const
    {
        return (bits[i / 64] >> (i % 64)) & 1;
    }
    void
    set(unsigned i)
    {
        bits[i / 64] |= 1ull << (i % 64);
    }
};

/**
 * ISV cache: maps (code-region VA, ASID) to the region's per-
 * instruction ISV bits.
 */
class IsvCache
{
  public:
    /** Bytes of kernel text each entry covers. */
    static constexpr sim::Addr kRegionBytes = 512;

    IsvCache(std::uint32_t entries = 128, std::uint32_t assoc = 4);

    /**
     * Look up instruction @p pc under @p asid at time @p now. An
     * in-flight fill (ready_at in the future) still reports a miss.
     */
    HwLookup lookup(sim::Addr pc, sim::Asid asid, bool defer_lru,
                    sim::Cycle now = 0, bool count = true);

    /** Fill the region containing @p pc with @p bits, usable at
     * @p ready_at (models the TLB+L2 refill latency). */
    void fill(sim::Addr pc, sim::Asid asid, IsvRegionBits bits,
              sim::Cycle ready_at = 0);

    /** Drop every entry of @p asid (view reconfigured). */
    void invalidateAsid(sim::Asid asid);
    void invalidateAll();

    /** Zero the hit/miss counters without evicting entries (used to
     * separate warmup from measurement). */
    void
    resetAccounting()
    {
        hits_ = 0;
        misses_ = 0;
    }

    std::uint64_t hits() const { return hits_; }
    std::uint64_t misses() const { return misses_; }
    double
    hitRate() const
    {
        std::uint64_t t = hits_ + misses_;
        return t == 0 ? 0.0 : static_cast<double>(hits_) / t;
    }

    /** Content generation: ticks on every fill and invalidation —
     * anything that can change a lookup's outcome. LRU touches do
     * not tick it. Used as a GateWake source. */
    const std::uint64_t *genPtr() const { return &gen_; }

  private:
    struct Entry
    {
        sim::Addr line = 0;
        sim::Asid asid = 0;
        IsvRegionBits bits;
        bool valid = false;
        std::uint64_t lru = 0;
        sim::Cycle readyAt = 0;
    };

    std::uint32_t sets_;
    std::uint32_t assoc_;
    std::vector<Entry> entries_;
    std::uint64_t useClock_ = 0;
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
    std::uint64_t gen_ = 0;
};

/**
 * DSVMT cache: maps (data page VA, ASID) to a single in-DSV bit
 * (53-bit entries in the paper's layout).
 */
class DsvCache
{
  public:
    DsvCache(std::uint32_t entries = 128, std::uint32_t assoc = 4);

    HwLookup lookup(sim::Addr va, sim::Asid asid, bool defer_lru,
                    sim::Cycle now = 0, bool count = true);
    void fill(sim::Addr va, sim::Asid asid, bool in_dsv,
              sim::Cycle ready_at = 0);

    /** Shoot down all entries caching @p page_va (ownership changed —
     * wired to the OwnershipMap listener). */
    void invalidatePage(sim::Addr page_va);
    void invalidateAll();

    /** Zero the hit/miss counters without evicting entries (used to
     * separate warmup from measurement). */
    void
    resetAccounting()
    {
        hits_ = 0;
        misses_ = 0;
    }

    std::uint64_t hits() const { return hits_; }
    std::uint64_t misses() const { return misses_; }
    double
    hitRate() const
    {
        std::uint64_t t = hits_ + misses_;
        return t == 0 ? 0.0 : static_cast<double>(hits_) / t;
    }

    /** Content generation (see IsvCache::genPtr). */
    const std::uint64_t *genPtr() const { return &gen_; }

  private:
    struct Entry
    {
        sim::Addr page = 0;
        sim::Asid asid = 0;
        bool inDsv = false;
        bool valid = false;
        std::uint64_t lru = 0;
        sim::Cycle readyAt = 0;
    };

    std::uint32_t sets_;
    std::uint32_t assoc_;
    std::vector<Entry> entries_;
    std::uint64_t useClock_ = 0;
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
    std::uint64_t gen_ = 0;
};

} // namespace perspective::core

#endif // PERSPECTIVE_CORE_HWCACHE_HH
