#include "views_ref.hh"

#include <algorithm>

namespace perspective::core
{

using kernel::Pfn;
using sim::FuncId;

void
DsvmtRef::setPage(Pfn pfn, bool in_dsv)
{
    // Demoting a huge mapping materializes nothing: leaf bits take
    // precedence when present, so just write the leaf.
    Leaf &leaf = leaves_[granuleOf(pfn)];
    unsigned bit = pfn & 511;
    if (in_dsv)
        leaf[bit / 64] |= 1ull << (bit % 64);
    else
        leaf[bit / 64] &= ~(1ull << (bit % 64));
}

void
DsvmtRef::set2M(Pfn first_pfn, bool in_dsv)
{
    leaves_.erase(granuleOf(first_pfn));
    huge2m_[granuleOf(first_pfn)] = in_dsv;
}

void
DsvmtRef::set1G(Pfn first_pfn, bool in_dsv)
{
    // Newest installation wins: drop every leaf / 2 MB entry of the
    // gig so nothing stale shadows the new region entry (mirrors the
    // production tree's precedence fix).
    std::uint64_t gig = gigOf(first_pfn);
    std::uint64_t first_granule = gig << 9;
    for (std::uint64_t gr = first_granule; gr < first_granule + 512;
         ++gr) {
        leaves_.erase(gr);
        huge2m_.erase(gr);
    }
    huge1g_[gig] = in_dsv;
}

bool
DsvmtRef::queryPfn(Pfn pfn) const
{
    auto leaf = leaves_.find(granuleOf(pfn));
    if (leaf != leaves_.end()) {
        unsigned bit = pfn & 511;
        return (leaf->second[bit / 64] >> (bit % 64)) & 1;
    }
    auto h2 = huge2m_.find(granuleOf(pfn));
    if (h2 != huge2m_.end())
        return h2->second;
    auto h1 = huge1g_.find(gigOf(pfn));
    if (h1 != huge1g_.end())
        return h1->second;
    return false;
}

bool
DsvmtRef::queryVa(sim::Addr va) const
{
    if (!kernel::inDirectMap(va))
        return false;
    return queryPfn(kernel::directMapPfn(va));
}

unsigned
DsvmtRef::walkLevels(Pfn pfn) const
{
    if (leaves_.count(granuleOf(pfn)))
        return 3;
    if (huge2m_.count(granuleOf(pfn)))
        return 2;
    return 1;
}

std::size_t
DsvmtRef::memoryBytes() const
{
    return leaves_.size() * sizeof(Leaf) +
           huge2m_.size() * sizeof(std::uint64_t) +
           huge1g_.size() * sizeof(std::uint64_t);
}

void
DsvmtRef::clear()
{
    leaves_.clear();
    huge2m_.clear();
    huge1g_.clear();
}

bool
IsvFuncSetRef::include(FuncId f)
{
    if (funcs_.insert(f).second) {
        ++epoch_;
        return true;
    }
    return false;
}

bool
IsvFuncSetRef::exclude(FuncId f)
{
    if (funcs_.erase(f) > 0) {
        ++epoch_;
        return true;
    }
    return false;
}

bool
IsvFuncSetRef::contains(FuncId f) const
{
    return funcs_.count(f) > 0;
}

void
IsvFuncSetRef::intersectWith(const IsvFuncSetRef &other)
{
    std::vector<FuncId> drop;
    for (FuncId f : funcs_)
        if (!other.contains(f))
            drop.push_back(f);
    for (FuncId f : drop)
        exclude(f);
}

void
IsvFuncSetRef::unionWith(const IsvFuncSetRef &other)
{
    for (FuncId f : other.funcs_)
        include(f);
}

std::vector<FuncId>
IsvFuncSetRef::sortedFunctions() const
{
    std::vector<FuncId> out(funcs_.begin(), funcs_.end());
    std::sort(out.begin(), out.end());
    return out;
}

} // namespace perspective::core
