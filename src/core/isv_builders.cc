#include "isv_builders.hh"

#include <deque>

namespace perspective::core
{

using kernel::Sys;
using sim::FuncId;

std::set<Sys>
StaticIsvBuilder::syscallsOfBinary(
    const std::vector<FuncId> &user_funcs) const
{
    // Map each kernel entry function back to its syscall.
    std::set<Sys> out;
    const sim::Program &prog = img_.program();
    for (FuncId uf : user_funcs) {
        for (const sim::MicroOp &op : prog.func(uf).body) {
            if (op.op != sim::Op::Call)
                continue;
            for (unsigned s = 0; s < kernel::kNumSyscalls; ++s) {
                if (img_.entryOf(static_cast<Sys>(s)) == op.callee)
                    out.insert(static_cast<Sys>(s));
            }
        }
    }
    return out;
}

std::unordered_set<FuncId>
StaticIsvBuilder::closure(const std::vector<FuncId> &roots) const
{
    std::unordered_set<FuncId> seen;
    std::deque<FuncId> work(roots.begin(), roots.end());
    for (FuncId r : roots)
        seen.insert(r);
    while (!work.empty()) {
        FuncId f = work.front();
        work.pop_front();
        for (FuncId c : img_.info(f).callees) {
            if (seen.insert(c).second)
                work.push_back(c);
        }
    }
    return seen;
}

IsvView
StaticIsvBuilder::build(const std::set<Sys> &syscalls) const
{
    std::vector<FuncId> roots;
    for (Sys s : syscalls)
        roots.push_back(img_.entryOf(s));
    IsvView view(img_.program());
    for (FuncId f : closure(roots))
        view.includeFunction(f);
    return view;
}

StaticIsvBuilder::ExtendStats
StaticIsvBuilder::extendView(IsvView &view,
                             const std::vector<FuncId> &roots) const
{
    ExtendStats st;
    std::deque<FuncId> work;
    std::unordered_set<FuncId> queued;
    for (FuncId r : roots) {
        ++st.visited;
        if (!view.containsFunction(r) && queued.insert(r).second)
            work.push_back(r);
    }
    while (!work.empty()) {
        FuncId f = work.front();
        work.pop_front();
        view.includeFunction(f);
        ++st.added;
        for (FuncId c : img_.info(f).callees) {
            ++st.visited;
            // Already-included functions bound the delta: their own
            // closure is in the view by construction, so the walk
            // stops at the frontier instead of re-crawling it.
            if (!view.containsFunction(c) && queued.insert(c).second)
                work.push_back(c);
        }
    }
    return st;
}

IsvView
DynamicIsvBuilder::build() const
{
    IsvView view(img_.program());
    for (FuncId f : seen_)
        view.includeFunction(f);
    return view;
}

void
applyAudit(IsvView &view, const std::vector<FuncId> &vulnerable)
{
    for (FuncId f : vulnerable)
        view.excludeFunction(f);
}

} // namespace perspective::core
