/**
 * @file
 * Instruction Speculation Views (ISVs).
 *
 * An ISV defines, per execution context, the set of kernel
 * instructions whose transmitters may execute speculatively
 * (Section 5.1). Views are stored at instruction granularity as
 * bitmaps shadowing kernel text ("ISV pages" at a fixed VA offset,
 * Section 6.2) and are *dynamically reconfigurable*: functions can be
 * removed at runtime to patch a newly-disclosed gadget without a
 * kernel update (Section 5.4).
 */

#ifndef PERSPECTIVE_CORE_ISV_HH
#define PERSPECTIVE_CORE_ISV_HH

#include <array>
#include <cstdint>
#include <vector>

#include "sim/program.hh"
#include "sim/types.hh"

namespace perspective::core
{

/** One context's instruction speculation view. */
class IsvView
{
  public:
    /**
     * @param prog laid-out program (kernel text defines the span)
     */
    explicit IsvView(const sim::Program &prog);

    /** Add every instruction of @p f to the view. */
    void includeFunction(sim::FuncId f);

    /**
     * Remove @p f from the view — the swift-patching interface: a
     * vulnerable function can be excluded at runtime, immediately
     * blocking speculative execution of its transmitters.
     */
    void excludeFunction(sim::FuncId f);

    /** True when instruction VA @p pc may transmit speculatively. */
    bool contains(sim::Addr pc) const;

    /** True when the whole function is in the view. */
    bool containsFunction(sim::FuncId f) const;

    /**
     * Restrict this view to functions also in @p other. This is the
     * administrator interface of Section 5.4: a system-wide policy
     * view ("no tenant may speculate into these subsystems") can be
     * intersected into every application's personalized view.
     */
    void intersectWith(const IsvView &other);

    /** Add every function of @p other (merging two trace profiles). */
    void unionWith(const IsvView &other);

    /** Number of kernel functions currently included. */
    std::size_t numFunctions() const { return numFuncs_; }

    /** Included function ids, ascending (for audits/reporting). */
    std::vector<sim::FuncId> functions() const;

    /**
     * The per-instruction ISV bits covering the code region of
     * @p region_bytes containing @p pc — the unit an ISV-cache fill
     * transfers from the ISV shadow page (Section 6.2).
     */
    std::array<std::uint64_t, 2>
    regionBits(sim::Addr pc, sim::Addr region_bytes) const;

    /** Monotone version; bumped on every reconfiguration so cached
     * entries can be shot down. */
    std::uint64_t epoch() const { return epoch_; }

    /** Stable pointer to the epoch — a GateWake generation source, so
     * a load blocked on an ISV verdict re-gates as soon as the view is
     * reconfigured (swift patching, module load) even if no other
     * gate check runs in between. The view must outlive any blocked
     * load holding this pointer (views live for the whole run). */
    const std::uint64_t *epochPtr() const { return &epoch_; }

    const sim::Program &program() const { return prog_; }

  private:
    std::size_t bitIndex(sim::Addr pc) const;
    void setFunctionBits(sim::FuncId f, bool value);
    bool funcBit(sim::FuncId f) const;
    void setFuncBit(sim::FuncId f, bool value);

    const sim::Program &prog_;
    sim::Addr textBase_;
    std::size_t numInsts_;
    std::vector<std::uint64_t> bits_;
    /** FuncId-indexed membership bitvector — kernel FuncIds are
     * dense by construction in Program::layout, so this replaces
     * the former unordered_set with a single word index. */
    std::vector<std::uint64_t> funcBits_;
    std::size_t numFuncs_ = 0;
    std::uint64_t epoch_ = 0;
};

} // namespace perspective::core

#endif // PERSPECTIVE_CORE_ISV_HH
