#include "hwcache.hh"

#include <cassert>

namespace perspective::core
{

using sim::Addr;
using sim::Asid;

IsvCache::IsvCache(std::uint32_t entries, std::uint32_t assoc)
    : assoc_(assoc)
{
    assert(entries % assoc == 0);
    sets_ = entries / assoc;
    entries_.resize(entries);
}

HwLookup
IsvCache::lookup(Addr pc, Asid asid, bool defer_lru, sim::Cycle now,
                 bool count)
{
    Addr line = pc & ~(IsvCache::kRegionBytes - 1);
    std::uint32_t set = static_cast<std::uint32_t>(
        (line / IsvCache::kRegionBytes) % sets_);
    for (std::uint32_t w = 0; w < assoc_; ++w) {
        Entry &e = entries_[set * assoc_ + w];
        if (e.valid && e.line == line && e.asid == asid) {
            if (now < e.readyAt) {
                if (count)
                    ++misses_; // fill still in flight
                return {false, false, e.readyAt};
            }
            if (!defer_lru)
                e.lru = ++useClock_;
            if (count)
                ++hits_;
            unsigned idx = static_cast<unsigned>((pc - line) / 4);
            return {true, e.bits.test(idx)};
        }
    }
    if (count)
        ++misses_;
    return {false, false};
}

void
IsvCache::fill(Addr pc, Asid asid, IsvRegionBits bits,
               sim::Cycle ready_at)
{
    Addr line = pc & ~(IsvCache::kRegionBytes - 1);
    std::uint32_t set = static_cast<std::uint32_t>(
        (line / IsvCache::kRegionBytes) % sets_);
    Entry *victim = nullptr;
    for (std::uint32_t w = 0; w < assoc_; ++w) {
        Entry &e = entries_[set * assoc_ + w];
        if (e.valid && e.line == line && e.asid == asid) {
            e.bits = bits;
            ++gen_;
            return; // already filling or present
        }
        if (!victim || (victim->valid &&
                        (!e.valid || e.lru < victim->lru))) {
            victim = &e;
        }
    }
    victim->valid = true;
    victim->line = line;
    victim->asid = asid;
    victim->bits = bits;
    victim->lru = ++useClock_;
    victim->readyAt = ready_at;
    ++gen_;
}

void
IsvCache::invalidateAsid(Asid asid)
{
    for (auto &e : entries_) {
        if (e.valid && e.asid == asid)
            e.valid = false;
    }
    ++gen_;
}

void
IsvCache::invalidateAll()
{
    for (auto &e : entries_)
        e.valid = false;
    ++gen_;
}

DsvCache::DsvCache(std::uint32_t entries, std::uint32_t assoc)
    : assoc_(assoc)
{
    assert(entries % assoc == 0);
    sets_ = entries / assoc;
    entries_.resize(entries);
}

HwLookup
DsvCache::lookup(Addr va, Asid asid, bool defer_lru, sim::Cycle now,
                 bool count)
{
    Addr page = sim::pageBase(va);
    std::uint32_t set =
        static_cast<std::uint32_t>((page >> sim::kPageShift) % sets_);
    for (std::uint32_t w = 0; w < assoc_; ++w) {
        Entry &e = entries_[set * assoc_ + w];
        if (e.valid && e.page == page && e.asid == asid) {
            if (now < e.readyAt) {
                if (count)
                    ++misses_; // fill still in flight
                return {false, false, e.readyAt};
            }
            if (!defer_lru)
                e.lru = ++useClock_;
            if (count)
                ++hits_;
            return {true, e.inDsv};
        }
    }
    if (count)
        ++misses_;
    return {false, false};
}

void
DsvCache::fill(Addr va, Asid asid, bool in_dsv, sim::Cycle ready_at)
{
    Addr page = sim::pageBase(va);
    std::uint32_t set =
        static_cast<std::uint32_t>((page >> sim::kPageShift) % sets_);
    Entry *victim = nullptr;
    for (std::uint32_t w = 0; w < assoc_; ++w) {
        Entry &e = entries_[set * assoc_ + w];
        if (e.valid && e.page == page && e.asid == asid) {
            e.inDsv = in_dsv;
            ++gen_;
            return;
        }
        if (!victim || (victim->valid &&
                        (!e.valid || e.lru < victim->lru))) {
            victim = &e;
        }
    }
    victim->valid = true;
    victim->page = page;
    victim->asid = asid;
    victim->inDsv = in_dsv;
    victim->lru = ++useClock_;
    victim->readyAt = ready_at;
    ++gen_;
}

void
DsvCache::invalidatePage(Addr page_va)
{
    Addr page = sim::pageBase(page_va);
    for (auto &e : entries_) {
        if (e.valid && e.page == page)
            e.valid = false;
    }
    ++gen_;
}

void
DsvCache::invalidateAll()
{
    for (auto &e : entries_)
        e.valid = false;
    ++gen_;
}

} // namespace perspective::core
