/**
 * @file
 * ISV generation via system-call interposition (Section 5.3).
 *
 * StaticIsvBuilder mirrors the radare2-based flow: identify the
 * system calls a binary can issue (by disassembling the user driver
 * for calls into kernel entry points), then walk the kernel's direct
 * call graph from those entries. Functions reachable only through
 * indirect calls are NOT included — the fundamental limitation of
 * static analysis the paper discusses.
 *
 * DynamicIsvBuilder mirrors the tracing flow: it is fed function-
 * entry events from instrumented (interpreted) runs of the workload
 * and emits a view containing exactly the functions observed,
 * including indirect-call targets.
 */

#ifndef PERSPECTIVE_CORE_ISV_BUILDERS_HH
#define PERSPECTIVE_CORE_ISV_BUILDERS_HH

#include <set>
#include <unordered_set>
#include <vector>

#include "isv.hh"
#include "kernel/image.hh"
#include "kernel/syscalls.hh"

namespace perspective::core
{

/** Static (binary-analysis) ISV generation. */
class StaticIsvBuilder
{
  public:
    explicit StaticIsvBuilder(const kernel::KernelImage &img)
        : img_(img)
    {
    }

    /**
     * Disassemble userspace functions of @p prog and report the set
     * of syscalls whose kernel entry points they call.
     */
    std::set<kernel::Sys>
    syscallsOfBinary(const std::vector<sim::FuncId> &user_funcs) const;

    /** Direct-call-graph closure from a set of root functions. */
    std::unordered_set<sim::FuncId>
    closure(const std::vector<sim::FuncId> &roots) const;

    /** Build the static ISV for an application's syscall set. */
    IsvView build(const std::set<kernel::Sys> &syscalls) const;

    /** Work done by one incremental view update (latency model). */
    struct ExtendStats
    {
        std::size_t added = 0;   ///< functions newly included
        std::size_t visited = 0; ///< call-graph edges examined
    };

    /**
     * Incremental ISV recomputation for a dynamic extension (module /
     * eBPF-program load): extend @p view with everything newly
     * reachable from @p roots by a delta BFS over the static call
     * graph that never crosses a function already in the view. Cost
     * is proportional to the *new* subgraph, not the whole closure —
     * for a closure-built view this equals a full rebuild from
     * old-roots ∪ roots.
     *
     * Caveat: the traversal re-includes functions an audit previously
     * excluded if they are reachable from @p roots; callers enforcing
     * ISV++ must re-run applyAudit() on the extension's gadget set
     * (exactly what a load-time scan would do).
     */
    ExtendStats extendView(IsvView &view,
                           const std::vector<sim::FuncId> &roots) const;

  private:
    const kernel::KernelImage &img_;
};

/** Dynamic (trace-driven) ISV generation. */
class DynamicIsvBuilder
{
  public:
    explicit DynamicIsvBuilder(const kernel::KernelImage &img)
        : img_(img)
    {
    }

    /** Record one function-entry event from the tracer. */
    void
    observe(sim::FuncId f)
    {
        if (f < img_.numKernelFunctions())
            seen_.insert(f);
    }

    /** Number of distinct kernel functions observed so far. */
    std::size_t numObserved() const { return seen_.size(); }
    const std::unordered_set<sim::FuncId> &observed() const
    {
        return seen_;
    }

    /** Emit the personalized dynamic ISV. */
    IsvView build() const;

  private:
    const kernel::KernelImage &img_;
    std::unordered_set<sim::FuncId> seen_;
};

/**
 * Harden a view with audit results (Section 5.4, "Enhancing ISVs with
 * Auditing"): every function the scanner flagged is excluded,
 * yielding ISV++.
 */
void applyAudit(IsvView &view,
                const std::vector<sim::FuncId> &vulnerable);

/** @name Modeled ISV-update latency
 * Cycle cost of one incremental recomputation: a base (update syscall
 * + ISV-cache shootdown IPI) plus per-function shadow-bitmap writes
 * and per-edge call-graph walk work. Sampled into the
 * "update_latency" sweep metric by the pliability scenarios.
 * @{ */
inline constexpr sim::Cycle kIsvUpdateBase = 400;
inline constexpr sim::Cycle kIsvUpdatePerFunc = 18;
inline constexpr sim::Cycle kIsvUpdatePerEdge = 3;

inline sim::Cycle
isvUpdateLatency(const StaticIsvBuilder::ExtendStats &st)
{
    return kIsvUpdateBase +
           kIsvUpdatePerFunc * static_cast<sim::Cycle>(st.added) +
           kIsvUpdatePerEdge * static_cast<sim::Cycle>(st.visited);
}
/** @} */

} // namespace perspective::core

#endif // PERSPECTIVE_CORE_ISV_BUILDERS_HH
