/**
 * @file
 * ISV generation via system-call interposition (Section 5.3).
 *
 * StaticIsvBuilder mirrors the radare2-based flow: identify the
 * system calls a binary can issue (by disassembling the user driver
 * for calls into kernel entry points), then walk the kernel's direct
 * call graph from those entries. Functions reachable only through
 * indirect calls are NOT included — the fundamental limitation of
 * static analysis the paper discusses.
 *
 * DynamicIsvBuilder mirrors the tracing flow: it is fed function-
 * entry events from instrumented (interpreted) runs of the workload
 * and emits a view containing exactly the functions observed,
 * including indirect-call targets.
 */

#ifndef PERSPECTIVE_CORE_ISV_BUILDERS_HH
#define PERSPECTIVE_CORE_ISV_BUILDERS_HH

#include <set>
#include <unordered_set>
#include <vector>

#include "isv.hh"
#include "kernel/image.hh"
#include "kernel/syscalls.hh"

namespace perspective::core
{

/** Static (binary-analysis) ISV generation. */
class StaticIsvBuilder
{
  public:
    explicit StaticIsvBuilder(const kernel::KernelImage &img)
        : img_(img)
    {
    }

    /**
     * Disassemble userspace functions of @p prog and report the set
     * of syscalls whose kernel entry points they call.
     */
    std::set<kernel::Sys>
    syscallsOfBinary(const std::vector<sim::FuncId> &user_funcs) const;

    /** Direct-call-graph closure from a set of root functions. */
    std::unordered_set<sim::FuncId>
    closure(const std::vector<sim::FuncId> &roots) const;

    /** Build the static ISV for an application's syscall set. */
    IsvView build(const std::set<kernel::Sys> &syscalls) const;

  private:
    const kernel::KernelImage &img_;
};

/** Dynamic (trace-driven) ISV generation. */
class DynamicIsvBuilder
{
  public:
    explicit DynamicIsvBuilder(const kernel::KernelImage &img)
        : img_(img)
    {
    }

    /** Record one function-entry event from the tracer. */
    void
    observe(sim::FuncId f)
    {
        if (f < img_.numKernelFunctions())
            seen_.insert(f);
    }

    /** Number of distinct kernel functions observed so far. */
    std::size_t numObserved() const { return seen_.size(); }
    const std::unordered_set<sim::FuncId> &observed() const
    {
        return seen_;
    }

    /** Emit the personalized dynamic ISV. */
    IsvView build() const;

  private:
    const kernel::KernelImage &img_;
    std::unordered_set<sim::FuncId> seen_;
};

/**
 * Harden a view with audit results (Section 5.4, "Enhancing ISVs with
 * Auditing"): every function the scanner flagged is excluded,
 * yielding ISV++.
 */
void applyAudit(IsvView &view,
                const std::vector<sim::FuncId> &vulnerable);

} // namespace perspective::core

#endif // PERSPECTIVE_CORE_ISV_BUILDERS_HH
