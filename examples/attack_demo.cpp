/**
 * @file
 * Attack demo: runs one *active* (Spectre v1 through a driver gadget)
 * and one *passive* (Spectre v2 BTB injection) transient-execution
 * attack end-to-end on the simulator, under unprotected hardware and
 * under Perspective, narrating each phase.
 *
 *   ./examples/attack_demo
 */

#include <cstdio>

#include "attacks/poc.hh"

using namespace perspective;
using namespace perspective::attacks;
using namespace perspective::workloads;

namespace
{

void
demo(PocKind kind, const char *story)
{
    std::printf("\n--- %s ---\n%s\n", std::string(pocName(kind)).c_str(),
                story);
    for (Scheme s : {Scheme::Unsafe, Scheme::Perspective}) {
        Experiment e(pocProfile(), s);
        auto r = runPoc(kind, e);
        std::printf("  under %-12s: ", schemeName(s));
        if (r.leaked) {
            std::printf("LEAKED secret byte 0x%02x through the cache "
                        "covert channel\n", *r.recovered);
        } else {
            std::printf("blocked — no probe line was touched\n");
        }
    }
}

} // namespace

int
main()
{
    std::printf("Transient-execution attacks on the simulated "
                "kernel\n");
    std::printf("==================================================\n");

    demo(PocKind::ActiveV1Ioctl,
         "The attacker mistrains a bounds check in a USB driver's\n"
         "ioctl path (CVE-2022-27223 analogue), then calls ioctl with\n"
         "an out-of-bounds index whose target is the *victim tenant's*\n"
         "memory. The transient load reads the secret; a dependent\n"
         "load transmits it into a Flush+Reload probe array.\n"
         "Perspective's DSVs block the access: the page belongs to\n"
         "another cgroup's speculation view.");

    demo(PocKind::PassiveV2,
         "The attacker poisons the BTB entry of the victim's vfs read\n"
         "dispatch so the victim's own kernel thread transiently jumps\n"
         "into a cold driver gadget that leaks the victim's own data.\n"
         "No ownership is violated — DSVs cannot help — but the gadget\n"
         "lies outside the victim's ISV, so its transmitter loads are\n"
         "blocked from speculative execution.");

    demo(PocKind::PassiveRetbleed,
         "A 20-deep path walk underflows the 16-entry RSB; underflowing\n"
         "returns fall back to the BTB, which the attacker poisoned\n"
         "(Retbleed). Retpoline does not cover returns — but the ISV\n"
         "does not care how control flow was hijacked.");

    std::printf("\nTaxonomy recap: active attacks die at the DSV, "
                "passive attacks die at the ISV.\n");
    return 0;
}
