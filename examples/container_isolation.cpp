/**
 * @file
 * Container isolation tour: how ownership flows from cgroups through
 * the buddy and secure slab allocators into DSVs — and why the
 * *normal* slab allocator's packing is a problem (Section 5.2).
 *
 *   ./examples/container_isolation
 */

#include <cstdio>

#include "kernel/kstate.hh"
#include "sim/memory.hh"

using namespace perspective;
using namespace perspective::kernel;

namespace
{

void
tour(bool secure_slab)
{
    std::printf("\n--- %s slab allocator ---\n",
                secure_slab ? "SECURE (Perspective)" : "normal");

    sim::Memory mem;
    KernelParams kp;
    kp.secureSlab = secure_slab;
    KernelState ks(mem, kp);

    CgroupId tenant_a = ks.createCgroup("tenant-a");
    CgroupId tenant_b = ks.createCgroup("tenant-b");
    Pid pa = ks.createProcess(tenant_a);
    Pid pb = ks.createProcess(tenant_b);

    std::printf("tenant-a process %u -> domain %u; tenant-b process "
                "%u -> domain %u\n", pa, ks.domainOf(pa), pb,
                ks.domainOf(pb));

    // Explicit allocations (mmap-style): page ownership goes straight
    // into the ownership map = the DSV ground truth.
    auto page_a = ks.allocUserPage(pa);
    std::printf("tenant-a mmap page: pfn %llu owned by domain %u\n",
                static_cast<unsigned long long>(*page_a),
                ks.ownership().ownerOf(*page_a));

    // Implicit allocations (kmalloc): this is where packing matters.
    Addr obj_a = ks.kmalloc(128, ks.domainOf(pa));
    Addr obj_b = ks.kmalloc(128, ks.domainOf(pb));
    bool same_page = directMapPfn(obj_a) == directMapPfn(obj_b);
    std::printf("kmalloc(128) objects: a=0x%llx b=0x%llx — %s\n",
                static_cast<unsigned long long>(obj_a),
                static_cast<unsigned long long>(obj_b),
                same_page ? "SAME page (collocated!)"
                          : "separate pages");
    std::printf("page of a owned by domain %u, page of b by domain "
                "%u\n",
                ks.ownership().ownerOfVa(obj_a),
                ks.ownership().ownerOfVa(obj_b));

    if (same_page) {
        std::printf("=> a DSV at page granularity cannot separate "
                    "these tenants;\n   this is why Perspective "
                    "requires the secure slab allocator.\n");
    } else {
        std::printf("=> each page holds a single tenant's objects; "
                    "DSVs isolate them cleanly.\n");
    }

    // Fragmentation price of isolation.
    double util_sum = 0;
    unsigned n = 0;
    for (const auto &cache : ks.slabs()) {
        if (cache->pagesInUse() > 0) {
            util_sum += cache->utilization();
            ++n;
        }
    }
    std::printf("slab utilization across active caches: %.1f%%\n",
                n ? 100.0 * util_sum / n : 100.0);

    ks.kfree(obj_a, 128);
    ks.kfree(obj_b, 128);
    ks.exitProcess(pa);
    ks.exitProcess(pb);
    std::printf("after exit: every frame released, ownership "
                "returned to unknown (%llu frames in use)\n",
                static_cast<unsigned long long>(
                    ks.buddy().allocatedFrames()));
}

} // namespace

int
main()
{
    std::printf("Ownership and isolation across containers\n");
    std::printf("==========================================\n");
    tour(/*secure_slab=*/false);
    tour(/*secure_slab=*/true);
    return 0;
}
