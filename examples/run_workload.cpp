/**
 * @file
 * Command-line workload runner — the "simulator frontend":
 *
 *   run_workload [workload] [scheme] [iterations]
 *   run_workload --list
 *
 * e.g.  ./examples/run_workload nginx perspective 30
 *       PERSPECTIVE_TRACE=squash,fence ./examples/run_workload \
 *           getpid fence 2
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "sim/trace.hh"
#include "workloads/experiment.hh"

using namespace perspective;
using namespace perspective::workloads;

namespace
{

std::vector<WorkloadProfile>
allWorkloads()
{
    auto v = lebenchSuite();
    for (auto &w : datacenterSuite())
        v.push_back(w);
    return v;
}

const WorkloadProfile *
findWorkload(const std::vector<WorkloadProfile> &all,
             const std::string &name)
{
    for (const auto &w : all) {
        if (w.name == name)
            return &w;
    }
    return nullptr;
}

bool
parseScheme(const std::string &name, Scheme *out)
{
    for (Scheme s :
         {Scheme::Unsafe, Scheme::Fence, Scheme::Dom, Scheme::Stt,
          Scheme::Spot, Scheme::SpecCfi, Scheme::InvisiSpec,
          Scheme::PerspectiveStatic, Scheme::Perspective,
          Scheme::PerspectivePlusPlus}) {
        if (name == schemeName(s)) {
            *out = s;
            return true;
        }
    }
    return false;
}

} // namespace

int
main(int argc, char **argv)
{
    auto all = allWorkloads();

    if (argc >= 2 && std::strcmp(argv[1], "--list") == 0) {
        std::printf("workloads:");
        for (const auto &w : all)
            std::printf(" %s", w.name.c_str());
        std::printf("\nschemes: unsafe fence dom stt spot spec-cfi "
                    "invisispec perspective-static perspective "
                    "perspective++\n");
        std::printf("trace flags (PERSPECTIVE_TRACE): fetch commit "
                    "squash fence predict\n");
        return 0;
    }

    std::string workload = argc > 1 ? argv[1] : "redis";
    std::string scheme_name = argc > 2 ? argv[2] : "perspective";
    unsigned iterations =
        argc > 3 ? static_cast<unsigned>(std::atoi(argv[3])) : 30;

    const WorkloadProfile *w = findWorkload(all, workload);
    Scheme scheme;
    if (!w || !parseScheme(scheme_name, &scheme)) {
        std::fprintf(stderr,
                     "usage: %s [workload] [scheme] [iterations] "
                     "(see --list)\n", argv[0]);
        return 1;
    }

    sim::trace::enableFromEnvironment();

    Experiment e(*w, scheme);
    auto r = e.run(iterations, 3);

    std::printf("workload            %s\n", w->name.c_str());
    std::printf("scheme              %s\n", scheme_name.c_str());
    std::printf("iterations          %u\n", iterations);
    std::printf("cycles              %llu\n",
                static_cast<unsigned long long>(r.cycles));
    std::printf("instructions        %llu (IPC %.2f)\n",
                static_cast<unsigned long long>(r.instructions),
                r.cycles ? static_cast<double>(r.instructions) /
                               r.cycles
                         : 0.0);
    std::printf("time in kernel      %.1f%%\n",
                100.0 * r.kernelFraction());
    std::printf("fences              %llu (%.1f per kilo-inst)\n",
                static_cast<unsigned long long>(r.fences),
                r.instructions
                    ? 1000.0 * r.fences / r.instructions
                    : 0.0);
    if (e.perspectivePolicy()) {
        std::printf("  isv / dsv fences  %llu / %llu\n",
                    static_cast<unsigned long long>(r.isvFences),
                    static_cast<unsigned long long>(r.dsvFences));
        std::printf("  isv cache hits    %.2f%%\n",
                    100.0 * r.isvCacheHitRate);
        std::printf("  dsv cache hits    %.2f%%\n",
                    100.0 * r.dsvCacheHitRate);
        std::printf("  isv size          %zu functions\n",
                    e.isvView()->numFunctions());
    }
    std::printf("mispredicts         %llu\n",
                static_cast<unsigned long long>(
                    r.stats.get("mispredicts")));
    std::printf("l1d miss rate       %.2f%%\n",
                100.0 * r.stats.ratio("l1d.misses",
                                      "l1d.accesses"));
    return 0;
}
