/**
 * @file
 * ISV inspector: operational visibility into a workload's speculation
 * views — per-subsystem composition, static-vs-dynamic deltas, and
 * where the gadget census falls relative to the views.
 *
 *   ./examples/isv_inspector
 */

#include <cstdio>
#include <map>

#include "workloads/experiment.hh"

using namespace perspective;
using namespace perspective::kernel;
using namespace perspective::workloads;

namespace
{

const char *
subsysName(Subsystem s)
{
    switch (s) {
      case Subsystem::Entry: return "entry";
      case Subsystem::Core: return "core";
      case Subsystem::Lib: return "lib";
      case Subsystem::Security: return "security";
      case Subsystem::Sched: return "sched";
      case Subsystem::Mm: return "mm";
      case Subsystem::Fs: return "fs";
      case Subsystem::Net: return "net";
      case Subsystem::Time: return "time";
      case Subsystem::Ipc: return "ipc";
      case Subsystem::Driver: return "driver";
      case Subsystem::Crypto: return "crypto";
      case Subsystem::Sound: return "sound";
      case Subsystem::Arch: return "arch";
      case Subsystem::Misc: return "misc";
    }
    return "?";
}

} // namespace

int
main()
{
    WorkloadProfile w = httpdProfile();
    Experiment stat(w, Scheme::PerspectiveStatic);
    Experiment dyn(w, Scheme::Perspective);
    KernelImage &img = dyn.image();

    std::printf("Speculation-view inspector: %s\n", w.name.c_str());
    std::printf("=====================================\n\n");

    // Per-subsystem composition.
    std::map<Subsystem, unsigned> total, in_static, in_dynamic;
    for (std::size_t f = 0; f < img.numKernelFunctions(); ++f) {
        auto id = static_cast<sim::FuncId>(f);
        Subsystem ss = img.info(id).subsys;
        ++total[ss];
        if (stat.isvView()->containsFunction(id))
            ++in_static[ss];
        if (dyn.isvView()->containsFunction(id))
            ++in_dynamic[ss];
    }

    std::printf("%-10s %8s %10s %10s\n", "subsystem", "kernel",
                "static ISV", "dynamic ISV");
    for (auto &[ss, n] : total) {
        if (in_static[ss] == 0 && in_dynamic[ss] == 0)
            continue;
        std::printf("%-10s %8u %10u %10u\n", subsysName(ss), n,
                    in_static[ss], in_dynamic[ss]);
    }
    std::printf("%-10s %8zu %10zu %10zu\n", "TOTAL",
                img.numKernelFunctions(),
                stat.isvView()->numFunctions(),
                dyn.isvView()->numFunctions());

    // Functions tracing found that static analysis cannot see.
    unsigned indirect_only = 0;
    for (sim::FuncId f : dyn.isvView()->functions()) {
        if (!stat.isvView()->containsFunction(f))
            ++indirect_only;
    }
    std::printf("\ntraced-but-not-static functions (indirect-call "
                "targets): %u\n", indirect_only);

    // Gadget census relative to the views.
    unsigned g_total = 0, g_static = 0, g_dynamic = 0;
    for (sim::FuncId f : img.functionsWithGadgets()) {
        g_total += img.info(f).gadgets.size();
        if (stat.isvView()->containsFunction(f))
            g_static += img.info(f).gadgets.size();
        if (dyn.isvView()->containsFunction(f))
            g_dynamic += img.info(f).gadgets.size();
    }
    std::printf("\ngadget census: %u total; %u reachable inside the "
                "static view, %u inside the dynamic view\n",
                g_total, g_static, g_dynamic);
    std::printf("=> ISV++ excludes those %u functions and blocks "
                "100%% of known gadgets.\n", g_dynamic);
    return 0;
}
