/**
 * @file
 * Quickstart: build a complete simulated stack — kernel image, kernel
 * state, a containerized process — run a workload under UNSAFE and
 * PERSPECTIVE, and inspect what the framework did.
 *
 *   ./examples/quickstart
 */

#include <cstdio>

#include "workloads/experiment.hh"

using namespace perspective;
using namespace perspective::workloads;

int
main()
{
    std::printf("Perspective quickstart\n");
    std::printf("======================\n\n");

    // A workload profile describes one application: the syscalls of
    // one request plus a userspace-compute knob.
    WorkloadProfile app = redisProfile();
    std::printf("workload: %s (%zu syscalls per request)\n",
                app.name.c_str(), app.request.size());

    // An Experiment wires the full stack for one (workload, scheme)
    // pair: memory, the 28K-function kernel image, allocators,
    // cgroups and processes, the defense policy, and the pipeline.
    Experiment unsafe_run(app, Scheme::Unsafe);
    Experiment persp_run(app, Scheme::Perspective);

    std::printf("kernel image: %zu functions, %zu micro-ops\n",
                unsafe_run.image().numKernelFunctions(),
                unsafe_run.image().program().totalOps());
    std::printf("dynamic ISV: %zu functions (%.1f%% of the "
                "kernel)\n\n",
                persp_run.isvView()->numFunctions(),
                100.0 * persp_run.isvView()->numFunctions() /
                    persp_run.image().numKernelFunctions());

    auto ru = unsafe_run.run(/*iterations=*/30, /*warmup=*/3);
    auto rp = persp_run.run(30, 3);

    std::printf("%-22s %12s %12s\n", "", "UNSAFE", "PERSPECTIVE");
    std::printf("%-22s %12llu %12llu\n", "cycles",
                static_cast<unsigned long long>(ru.cycles),
                static_cast<unsigned long long>(rp.cycles));
    std::printf("%-22s %12llu %12llu\n", "instructions",
                static_cast<unsigned long long>(ru.instructions),
                static_cast<unsigned long long>(rp.instructions));
    std::printf("%-22s %11.1f%% %11.1f%%\n", "time in kernel",
                100.0 * ru.kernelFraction(),
                100.0 * rp.kernelFraction());
    std::printf("%-22s %12llu %12llu\n", "fences",
                static_cast<unsigned long long>(ru.fences),
                static_cast<unsigned long long>(rp.fences));
    std::printf("%-22s %12s %11.1f%%\n", "ISV cache hit rate", "-",
                100.0 * rp.isvCacheHitRate);
    std::printf("%-22s %12s %11.1f%%\n", "DSV cache hit rate", "-",
                100.0 * rp.dsvCacheHitRate);
    std::printf("\nPerspective execution overhead: %.2f%%\n",
                100.0 * (static_cast<double>(rp.cycles) / ru.cycles -
                         1.0));
    return 0;
}
