/**
 * @file
 * Live patching with reconfigurable ISVs (Section 5.4): when a new
 * gadget is disclosed in a kernel function, exclude that function
 * from the running application's ISV — no kernel patch, no reboot —
 * and show that (a) the attack is immediately blocked and (b) steady-
 * state performance is essentially unchanged.
 *
 *   ./examples/live_patching
 */

#include <cstdio>

#include "attacks/poc.hh"

using namespace perspective;
using namespace perspective::attacks;
using namespace perspective::workloads;

int
main()
{
    std::printf("Dynamically reconfigurable ISVs: patching a gadget "
                "at runtime\n");
    std::printf("====================================================="
                "=====\n\n");

    // The service runs under Perspective with its dynamic ISV. The
    // ptrace gadget (CVE-2019-15902 analogue) is on a traced path,
    // so it IS inside the view: DSVs stop the cross-tenant leak, but
    // suppose the operator wants the gadget gone outright — e.g. the
    // disclosure also enables a same-domain attack.
    Experiment e(pocProfile(), Scheme::Perspective);
    auto *view = e.isvView();
    auto gadget = e.image().pocPtraceGadget();

    std::printf("ISV before patch: %zu functions; gadget function "
                "'%s' in view: %s\n",
                view->numFunctions(),
                e.image().program().func(gadget).name.c_str(),
                view->containsFunction(gadget) ? "yes" : "no");

    auto before = e.run(20, 3);
    std::printf("steady-state: %llu cycles / 20 requests\n\n",
                static_cast<unsigned long long>(before.cycles));

    // --- the disclosure lands; the operator reacts ------------------
    std::printf("[security advisory received — excluding the "
                "function from the live view]\n\n");
    view->excludeFunction(gadget);

    std::printf("ISV after patch: %zu functions; gadget in view: "
                "%s\n", view->numFunctions(),
                view->containsFunction(gadget) ? "yes" : "no");

    // The gadget's transmitters can no longer execute speculatively,
    // under ANY hijack or mistraining, for this context.
    auto attack = runPoc(PocKind::ActiveV1Ptrace, e);
    std::printf("PoC against the patched view: %s\n",
                attack.leaked ? "LEAKED (!!)" : "blocked");

    auto after = e.run(20, 3);
    double delta = 100.0 * (static_cast<double>(after.cycles) /
                                before.cycles - 1.0);
    std::printf("steady-state after patch: %llu cycles / 20 requests "
                "(%+.2f%%)\n",
                static_cast<unsigned long long>(after.cycles), delta);
    std::printf("\nNo kernel rebuild, no reboot, no downtime — the "
                "view is the patch.\n");
    return 0;
}
