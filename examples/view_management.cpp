/**
 * @file
 * Runtime ISV management (Section 5.4): views only ever get stricter.
 *
 *  1. post-startup shrinking — after initialization, the loader /
 *     socket-setup syscall paths are never needed again; re-trace the
 *     steady state and intersect it into the live view;
 *  2. administrator views — a fleet-wide policy ("no tenant may
 *     speculate into the ptrace/bpf machinery") is intersected into
 *     every application's personalized view.
 *
 *   ./examples/view_management
 */

#include <cstdio>

#include "core/isv_builders.hh"
#include "workloads/experiment.hh"

using namespace perspective;
using namespace perspective::core;
using namespace perspective::workloads;

int
main()
{
    std::printf("Runtime ISV management\n");
    std::printf("======================\n\n");

    Experiment e(nginxProfile(), Scheme::Perspective);
    IsvView *live = e.isvView();
    double total =
        static_cast<double>(e.image().numKernelFunctions());

    std::printf("boot-time dynamic ISV: %zu functions (%.2f%% of "
                "the kernel)\n",
                live->numFunctions(),
                100.0 * live->numFunctions() / total);
    auto before = e.run(15, 3);

    // ---- 1. shrink to the steady state ------------------------------
    // Trace only the request loop (startup is over) and intersect.
    DynamicIsvBuilder steady(e.image());
    for (int i = 0; i < 3; ++i)
        e.traceRequest([&](sim::FuncId f) { steady.observe(f); });
    IsvView steady_view = steady.build();
    live->intersectWith(steady_view);

    std::printf("after post-startup shrink: %zu functions (%.2f%%)\n",
                live->numFunctions(),
                100.0 * live->numFunctions() / total);

    // ---- 2. administrator deny-list ---------------------------------
    // Fleet policy: the ptrace and bpf handler trees are off-limits
    // to speculation for every tenant, period.
    StaticIsvBuilder builder(e.image());
    auto denied = builder.closure(
        {e.image().entryOf(kernel::Sys::Ptrace),
         e.image().entryOf(kernel::Sys::Bpf)});
    unsigned removed = 0;
    for (sim::FuncId f : denied) {
        if (live->containsFunction(f)) {
            live->excludeFunction(f);
            ++removed;
        }
    }
    std::printf("administrator policy removed %u more functions "
                "(ptrace/bpf machinery)\n", removed);

    auto after = e.run(15, 3);
    std::printf("\nsteady-state cycles: %llu -> %llu (%+.2f%%)\n",
                static_cast<unsigned long long>(before.cycles),
                static_cast<unsigned long long>(after.cycles),
                100.0 * (static_cast<double>(after.cycles) /
                             before.cycles - 1.0));
    std::printf("surface: every excluded function's transmitters are "
                "now fenced for this tenant,\nwhatever Spectre "
                "variant tries to reach them.\n");
    return 0;
}
