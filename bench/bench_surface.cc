/**
 * @file
 * Table 8.1: attack-surface reduction — the fraction of kernel
 * functions excluded from speculative execution by static (ISV-S) and
 * dynamic (ISV) views, per workload. The LEBench column averages the
 * per-microbenchmark personalized views, like the paper.
 */

#include <cstdio>

#include "common.hh"
#include "workloads/experiment.hh"

using namespace perspective;
using namespace perspective::bench;
using namespace perspective::workloads;

namespace
{

struct Surface
{
    double staticPct = 0;  ///< functions remaining under ISV-S
    double dynamicPct = 0; ///< functions remaining under ISV
};

Surface
surfaceOf(const WorkloadProfile &w)
{
    Surface s;
    Experiment stat(w, Scheme::PerspectiveStatic);
    double total =
        static_cast<double>(stat.image().numKernelFunctions());
    s.staticPct = 100.0 * stat.isvView()->numFunctions() / total;
    Experiment dyn(w, Scheme::Perspective);
    s.dynamicPct = 100.0 * dyn.isvView()->numFunctions() / total;
    return s;
}

} // namespace

int
main()
{
    banner("Table 8.1: Attack surface reduction with Perspective");
    std::printf("(reduction = 100%% - remaining speculatively-"
                "executable functions)\n\n");
    std::printf("%-10s %-10s %-10s\n", "Config", "ISV-S", "ISV");
    rule(32);

    // LEBench: average of the per-microbenchmark personalized views.
    double s_sum = 0, d_sum = 0;
    auto suite = lebenchSuite();
    for (const auto &w : suite) {
        Surface s = surfaceOf(w);
        s_sum += s.staticPct;
        d_sum += s.dynamicPct;
    }
    std::printf("%-10s %6.1f%%    %6.1f%%\n", "LEBench",
                100.0 - s_sum / suite.size(),
                100.0 - d_sum / suite.size());

    for (const auto &w : datacenterSuite()) {
        Surface s = surfaceOf(w);
        std::printf("%-10s %6.1f%%    %6.1f%%\n", w.name.c_str(),
                    100.0 - s.staticPct, 100.0 - s.dynamicPct);
    }

    std::printf("\n[paper: ISV-S 90-92%%, ISV 94-96%% across all "
                "workloads]\n");
    return 0;
}
