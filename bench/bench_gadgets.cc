/**
 * @file
 * Table 8.2: MDS / Port / Cache gadget reduction. For each workload
 * and ISV flavor, the fraction of the 1 533 planted gadgets whose
 * functions fall OUTSIDE the view — i.e. whose speculative execution
 * Perspective blocks. ISV++ (audit-hardened) must reach 100%.
 */

#include <cstdio>

#include "common.hh"
#include "kernel/image.hh"
#include "workloads/experiment.hh"

using namespace perspective;
using namespace perspective::bench;
using namespace perspective::kernel;
using namespace perspective::workloads;

namespace
{

struct Reduction
{
    double mds = 0, port = 0, cache = 0;
};

Reduction
blockedBy(const core::IsvView &view, const KernelImage &img)
{
    unsigned total[3] = {0, 0, 0};
    unsigned blocked[3] = {0, 0, 0};
    for (std::size_t f = 0; f < img.numKernelFunctions(); ++f) {
        auto id = static_cast<sim::FuncId>(f);
        for (GadgetKind k : img.info(id).gadgets) {
            unsigned i = static_cast<unsigned>(k);
            ++total[i];
            if (!view.containsFunction(id))
                ++blocked[i];
        }
    }
    Reduction r;
    r.mds = 100.0 * blocked[0] / total[0];
    r.port = 100.0 * blocked[1] / total[1];
    r.cache = 100.0 * blocked[2] / total[2];
    return r;
}

} // namespace

int
main()
{
    banner("Table 8.2: Perspective's MDS/Port/Cache gadget reduction");
    std::printf("%-10s %-22s %-22s %-22s\n", "Benchmark", "ISV-S",
                "ISV", "ISV++");
    rule(80);

    auto row = [](const char *name, Reduction s, Reduction d,
                  Reduction pp) {
        std::printf("%-10s %5.0f%% /%5.0f%% /%5.0f%%  "
                    "%5.0f%% /%5.0f%% /%5.0f%%  "
                    "%5.0f%% /%5.0f%% /%5.0f%%\n",
                    name, s.mds, s.port, s.cache, d.mds, d.port,
                    d.cache, pp.mds, pp.port, pp.cache);
    };

    // LEBench: average over per-microbenchmark views.
    {
        Reduction ss{}, dd{}, pp{};
        auto suite = lebenchSuite();
        for (const auto &w : suite) {
            Experiment es(w, Scheme::PerspectiveStatic);
            auto s = blockedBy(*es.isvView(), es.image());
            Experiment ed(w, Scheme::Perspective);
            auto d = blockedBy(*ed.isvView(), ed.image());
            Experiment ep(w, Scheme::PerspectivePlusPlus);
            auto p = blockedBy(*ep.isvView(), ep.image());
            ss.mds += s.mds; ss.port += s.port; ss.cache += s.cache;
            dd.mds += d.mds; dd.port += d.port; dd.cache += d.cache;
            pp.mds += p.mds; pp.port += p.port; pp.cache += p.cache;
        }
        double n = static_cast<double>(suite.size());
        row("LEBench",
            {ss.mds / n, ss.port / n, ss.cache / n},
            {dd.mds / n, dd.port / n, dd.cache / n},
            {pp.mds / n, pp.port / n, pp.cache / n});
    }

    for (const auto &w : datacenterSuite()) {
        Experiment es(w, Scheme::PerspectiveStatic);
        Experiment ed(w, Scheme::Perspective);
        Experiment ep(w, Scheme::PerspectivePlusPlus);
        row(w.name.c_str(), blockedBy(*es.isvView(), es.image()),
            blockedBy(*ed.isvView(), ed.image()),
            blockedBy(*ep.isvView(), ep.image()));
    }

    std::printf("\n[paper: ISV-S 78-87%%, ISV 91-93%%, ISV++ 100%% "
                "everywhere]\n");
    return 0;
}
