/**
 * @file
 * Simulator-speed microbenchmark: how many simulated instructions per
 * wall second does the harness itself sustain? Runs the full LEBench
 * (workload x scheme) grid twice — once with the boot-snapshot fast
 * path disabled (every cell boots its own kernel image) and once with
 * it enabled (one boot per seed, restored copy-on-write) — and
 * reports per-cell and aggregate MIPS plus the fast-path speedup.
 *
 * The per-cell "mips" figure also lands in the --json emission (see
 * cellToJson), so CI can archive throughput alongside the simulated
 * metrics and bench_report --perf-baseline can gate on it.
 */

#include <cstdio>
#include <vector>

#include "common.hh"
#include "harness/sweep.hh"
#include "workloads/boot_cache.hh"
#include "workloads/experiment.hh"

using namespace perspective;
using namespace perspective::bench;
using namespace perspective::harness;
using namespace perspective::workloads;

namespace
{

struct ModeTotals
{
    std::uint64_t instructions = 0;
    double wall = 0;

    double mips() const
    {
        return wall > 0
                   ? static_cast<double>(instructions) / wall / 1e6
                   : 0.0;
    }
};

ModeTotals
totalsOf(const std::vector<CellResult> &results, double wall)
{
    ModeTotals t;
    t.wall = wall;
    for (const CellResult &r : results)
        if (r.ok)
            t.instructions += r.result.instructions;
    return t;
}

} // namespace

int
main(int argc, char **argv)
{
    SweepOptions opts = parseSweepArgs("bench_simspeed", argc, argv);
    // This bench measures wall-clock throughput; serving cells from
    // the persistent cache would time disk reads, not the simulator.
    opts.noCache = true;
    SweepRunner sweep(opts);

    std::vector<Scheme> schemes = allSchemes();
    auto suite = lebenchSuite();

    auto makeGrid = [&](const char *boot_tag, bool fastForward,
                        sim::SamplingParams sampling = {}) {
        std::vector<SweepCell> cells;
        for (const auto &w : suite) {
            for (Scheme s : schemes) {
                SweepCell c;
                c.profile = w;
                c.scheme = s;
                c.iterations = kIterations;
                c.warmup = kWarmup;
                c.fastForward = fastForward;
                c.sampling = sampling;
                c.tags["boot"] = boot_tag;
                c.tags["exec"] = sampling.enabled ? "sampled"
                                 : fastForward    ? "fastforward"
                                                  : "detailed";
                cells.push_back(std::move(c));
            }
        }
        return cells;
    };

    banner("Simulation throughput: LEBench grid, fresh boot vs "
           "shared boot snapshot");

    // Fresh mode: disable the cache so every Experiment builds and
    // lays out its own kernel image, like the pre-fast-path harness.
    BootImage::setSnapshotEnabled(false);
    BootImage::dropCache();
    double w0 = sweep.wallSeconds();
    auto fresh = sweep.run(makeGrid("fresh", false));
    ModeTotals freshT = totalsOf(fresh, sweep.wallSeconds() - w0);

    BootImage::setSnapshotEnabled(true);
    double w1 = sweep.wallSeconds();
    auto shared = sweep.run(makeGrid("shared", false));
    ModeTotals sharedT = totalsOf(shared, sweep.wallSeconds() - w1);

    // Shared boot again with fast-forward execution (DESIGN §5.5):
    // same simulated results bit for bit — the goldens and the
    // differential suite enforce that — so any MIPS delta is pure
    // harness throughput.
    double w2 = sweep.wallSeconds();
    auto sharedFf = sweep.run(makeGrid("shared", true));
    ModeTotals sharedFfT = totalsOf(sharedFf, sweep.wallSeconds() - w2);

    // Fourth pass: sampled simulation (DESIGN §5.8) on the shared
    // boot. Statistical rather than bit-exact, so it runs in its own
    // runner emitting to a separate "-sampled" JSON — the main
    // emission stays the 513-cell exact grid CI compares
    // bit-identically. Skipped under fleet: coordinator and workers
    // must construct identical batch sequences, and the second
    // runner would fork that lockstep.
    ModeTotals sampledT;
    std::size_t sampledCells = 0;
    if (!opts.fleetCoordinator() && !opts.fleetWorker()) {
        SweepOptions sopts = opts;
        sopts.tracePath.clear();
        if (!sopts.jsonPath.empty()) {
            std::string p = sopts.jsonPath;
            const std::string ext = ".json";
            if (p.size() > ext.size() &&
                p.compare(p.size() - ext.size(), ext.size(), ext) == 0)
                p.insert(p.size() - ext.size(), "-sampled");
            else
                p += "-sampled";
            sopts.jsonPath = p;
        }
        SweepRunner sampledSweep(sopts);
        sim::SamplingParams sp;
        sp.enabled = true;
        auto sampled = sampledSweep.run(makeGrid("shared", true, sp));
        sampledT = totalsOf(sampled, sampledSweep.wallSeconds());
        sampledCells = sampled.size();
        if (!sampledSweep.emitOutputs())
            return 1;
    }

    // Per-cell MIPS table for the fast-path run.
    std::printf("%-14s", "benchmark");
    for (Scheme s : schemes)
        std::printf("%12s", schemeName(s));
    std::printf("\n");
    rule(14 + 12 * schemes.size());
    for (std::size_t row = 0; row < suite.size(); ++row) {
        std::printf("%-14s", suite[row].name.c_str());
        for (std::size_t k = 0; k < schemes.size(); ++k) {
            const CellResult &r = shared[row * schemes.size() + k];
            double mips =
                r.ok && r.wallSeconds > 0
                    ? static_cast<double>(r.result.instructions) /
                          r.wallSeconds / 1e6
                    : 0.0;
            std::printf("%12.2f", mips);
        }
        std::printf("\n");
    }
    rule(14 + 12 * schemes.size());

    std::printf("\n%-12s %10s %10s %10s\n", "boot mode", "cells",
                "wall (s)", "MIPS");
    std::printf("%-12s %10zu %10.2f %10.2f\n", "fresh",
                fresh.size(), freshT.wall, freshT.mips());
    std::printf("%-12s %10zu %10.2f %10.2f\n", "shared",
                shared.size(), sharedT.wall, sharedT.mips());
    std::printf("%-12s %10zu %10.2f %10.2f\n", "shared+ff",
                sharedFf.size(), sharedFfT.wall, sharedFfT.mips());
    if (sampledCells > 0)
        std::printf("%-12s %10zu %10.2f %10.2f\n", "shared+smpl",
                    sampledCells, sampledT.wall, sampledT.mips());
    if (freshT.mips() > 0)
        std::printf("\nboot-snapshot speedup: %.2fx (aggregate "
                    "simulated MIPS, %u jobs)\n",
                    sharedT.mips() / freshT.mips(), sweep.jobs());
    if (sharedT.mips() > 0)
        std::printf("fast-forward speedup:  %.2fx over the shared-"
                    "boot detailed loop\n",
                    sharedFfT.mips() / sharedT.mips());
    if (sampledCells > 0 && sharedFfT.mips() > 0)
        std::printf("sampled speedup:       %.2fx over the fast-"
                    "forward loop (statistical; bench_report "
                    "--accuracy-baseline gates the error)\n",
                    sampledT.mips() / sharedFfT.mips());

    return sweep.emitOutputs() ? 0 : 1;
}
