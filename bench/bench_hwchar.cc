/**
 * @file
 * Table 9.1: hardware structure characterization of Perspective's ISV
 * and DSV caches at 22 nm (CACTI-class analytic model).
 */

#include <cstdio>

#include "common.hh"
#include "core/hwmodel.hh"

using namespace perspective;
using namespace perspective::bench;
using namespace perspective::core;

int
main()
{
    banner("Table 9.1: Hardware Structure Characterization (22 nm)");
    std::printf("%-14s %-12s %-13s %-13s %-12s\n", "Configuration",
                "Area", "Access Time", "Dyn. Energy", "Leak. Power");
    rule(66);

    for (const SramGeometry &g :
         {dsvCacheGeometry(), isvCacheGeometry()}) {
        auto c = characterizeSram(g);
        std::printf("%-14s %8.4f mm2 %8.0f ps  %9.2f pJ  %8.2f mW\n",
                    g.name.c_str(), c.areaMm2, c.accessPs,
                    c.dynEnergyPj, c.leakPowerMw);
    }
    std::printf("\n[paper: DSV 0.0024 mm2 / 114 ps / 1.21 pJ / 0.78 "
                "mW; ISV 0.0025 / 115 / 1.29 / 0.79]\n");
    return 0;
}
