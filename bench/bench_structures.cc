/**
 * @file
 * Google-benchmark microbenchmarks of the hardware-model building
 * blocks: ISV/DSV cache lookups, DSVMT walks, predictor queries, and
 * ISV view reconfiguration. These measure the *simulator's* cost per
 * modeled operation (host nanoseconds), useful for keeping the
 * experiment harness fast.
 */

#include <benchmark/benchmark.h>

#include "core/dsvmt.hh"
#include "core/hwcache.hh"
#include "core/isv.hh"
#include "sim/predictor.hh"
#include "sim/program.hh"

using namespace perspective;
using namespace perspective::core;
using namespace perspective::sim;

namespace
{

void
BM_IsvCacheLookupHit(benchmark::State &state)
{
    IsvCache c;
    IsvRegionBits bits;
    bits.set(0);
    c.fill(kKernelTextBase, 1, bits);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            c.lookup(kKernelTextBase, 1, true));
    }
}
BENCHMARK(BM_IsvCacheLookupHit);

void
BM_IsvCacheLookupMiss(benchmark::State &state)
{
    IsvCache c;
    Addr pc = kKernelTextBase;
    for (auto _ : state) {
        benchmark::DoNotOptimize(c.lookup(pc, 1, true));
        pc += 512;
    }
}
BENCHMARK(BM_IsvCacheLookupMiss);

void
BM_DsvCacheLookupHit(benchmark::State &state)
{
    DsvCache c;
    c.fill(kDirectMapBase, 1, true);
    for (auto _ : state)
        benchmark::DoNotOptimize(c.lookup(kDirectMapBase, 1, true));
}
BENCHMARK(BM_DsvCacheLookupHit);

void
BM_DsvmtQuery(benchmark::State &state)
{
    Dsvmt t;
    for (kernel::Pfn p = 0; p < 4096; p += 3)
        t.setPage(p, true);
    kernel::Pfn p = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(t.queryPfn(p));
        p = (p + 7) % 4096;
    }
}
BENCHMARK(BM_DsvmtQuery);

void
BM_CondPredictorPredict(benchmark::State &state)
{
    CondPredictor p;
    Addr pc = kKernelTextBase;
    for (auto _ : state) {
        benchmark::DoNotOptimize(p.predict(pc));
        pc += 4;
    }
}
BENCHMARK(BM_CondPredictorPredict);

void
BM_IsvViewReconfigure(benchmark::State &state)
{
    Program prog;
    FuncId f = prog.addFunction("kf", true);
    prog.func(f).body.assign(64, nop());
    prog.func(f).body.push_back(ret());
    prog.layout();
    IsvView v(prog);
    for (auto _ : state) {
        v.includeFunction(f);
        v.excludeFunction(f);
    }
}
BENCHMARK(BM_IsvViewReconfigure);

void
BM_IsvViewRegionBits(benchmark::State &state)
{
    Program prog;
    FuncId f = prog.addFunction("kf", true);
    prog.func(f).body.assign(128, nop());
    prog.func(f).body.push_back(ret());
    prog.layout();
    IsvView v(prog);
    v.includeFunction(f);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            v.regionBits(prog.func(f).instAddr(0), 512));
    }
}
BENCHMARK(BM_IsvViewRegionBits);

} // namespace

BENCHMARK_MAIN();
