/**
 * @file
 * Ablations of Perspective's design choices (DESIGN.md calls these
 * out; the paper motivates each in Sections 6.2 and 9.2):
 *
 *  1. ISV/DSV cache capacity — why 128 entries suffice;
 *  2. fill latency — how sensitive blocking-until-refill is;
 *  3. view composition — DSV-only / ISV-only / both (the taxonomy
 *     says both are needed; this shows each half's cost);
 *  4. ASID tagging of the lookup caches across context switches;
 *  5. the secure slab allocator's performance cost.
 *
 * All five ablations are planned as one sweep grid, so `--jobs N`
 * parallelizes across every cell and the shared UNSAFE baselines run
 * once instead of once per configuration. `--json PATH` dumps the
 * raw cells, each tagged with its ablation and knob values.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "common.hh"
#include "core/perspective.hh"
#include "harness/sweep.hh"
#include "workloads/experiment.hh"

using namespace perspective;
using namespace perspective::bench;
using namespace perspective::harness;
using namespace perspective::workloads;

namespace
{

/** Cell body: run `profile` under Perspective with a bespoke policy
 * config, reporting the custom policy's cache hit rates. */
SweepCell
configCell(const WorkloadProfile &w, core::PerspectiveConfig cfg,
           std::map<std::string, std::string> tags)
{
    SweepCell c;
    c.profile = w;
    c.scheme = Scheme::Perspective;
    c.iterations = kIterations;
    c.warmup = kWarmup;
    c.tags = std::move(tags);
    c.body = [cfg](const SweepCell &cell) {
        Experiment e(cell.profile, Scheme::Perspective, cell.seed);
        core::PerspectivePolicy pol(e.kernelState().ownership(), cfg,
                                    "ablation");
        const auto &t = e.kernelState().task(e.mainPid());
        pol.registerContext(t.asid, t.domain, e.isvView());
        e.pipeline().setPolicy(&pol);
        RunResult r = e.run(cell.iterations, cell.warmup);
        r.isvCacheHitRate = pol.isvCache().hitRate();
        r.dsvCacheHitRate = pol.dsvCache().hitRate();
        return r;
    };
    return c;
}

SweepCell
unsafeCell(const WorkloadProfile &w, const char *ablation)
{
    SweepCell c;
    c.profile = w;
    c.scheme = Scheme::Unsafe;
    c.iterations = kIterations;
    c.warmup = kWarmup;
    c.tags = {{"ablation", ablation}, {"role", "baseline"}};
    return c;
}

double
norm(const CellResult &r, const CellResult &base)
{
    return static_cast<double>(r.result.cycles) /
           static_cast<double>(base.result.cycles);
}

} // namespace

int
main(int argc, char **argv)
{
    SweepRunner sweep(parseSweepArgs("bench_ablation", argc, argv));

    WorkloadProfile app = nginxProfile();
    WorkloadProfile mmap_bench, bigread_bench;
    for (const auto &w : lebenchSuite()) {
        if (w.name == "mmap")
            mmap_bench = w;
        if (w.name == "big-read")
            bigread_bench = w;
    }

    // ---- Plan the whole grid up front -----------------------------
    std::vector<SweepCell> cells;

    // Ablation 1: cache capacity (nginx). Baseline + 4 sizes.
    const std::vector<unsigned> kEntries = {32u, 64u, 128u, 256u};
    std::size_t a1 = cells.size();
    cells.push_back(unsafeCell(app, "cache-capacity"));
    for (unsigned entries : kEntries) {
        core::PerspectiveConfig cfg;
        cfg.isvCacheEntries = entries;
        cfg.dsvCacheEntries = entries;
        cells.push_back(configCell(
            app, cfg,
            {{"ablation", "cache-capacity"},
             {"entries", std::to_string(entries)}}));
    }

    // Ablation 2: fill latency (mmap). Baseline + 4 latencies.
    const std::vector<sim::Cycle> kLatencies = {
        sim::Cycle{7}, sim::Cycle{14}, sim::Cycle{28},
        sim::Cycle{56}};
    std::size_t a2 = cells.size();
    cells.push_back(unsafeCell(mmap_bench, "fill-latency"));
    for (sim::Cycle lat : kLatencies) {
        core::PerspectiveConfig cfg;
        cfg.fillLatency = lat;
        cells.push_back(configCell(
            mmap_bench, cfg,
            {{"ablation", "fill-latency"},
             {"cycles", std::to_string(lat)}}));
    }

    // Ablation 3: view composition. Per workload: baseline,
    // DSV-only, ISV-only, both.
    const std::vector<WorkloadProfile> comp_workloads = {
        mmap_bench, bigread_bench, httpdProfile()};
    std::size_t a3 = cells.size();
    for (const auto &w : comp_workloads) {
        cells.push_back(unsafeCell(w, "view-composition"));
        core::PerspectiveConfig dsv_only;
        dsv_only.enableIsv = false;
        core::PerspectiveConfig isv_only;
        isv_only.enableDsv = false;
        core::PerspectiveConfig both;
        cells.push_back(configCell(w, dsv_only,
                                   {{"ablation", "view-composition"},
                                    {"views", "dsv-only"}}));
        cells.push_back(configCell(w, isv_only,
                                   {{"ablation", "view-composition"},
                                    {"views", "isv-only"}}));
        cells.push_back(configCell(w, both,
                                   {{"ablation", "view-composition"},
                                    {"views", "both"}}));
    }

    // Ablation 4: ASID tagging vs flush-on-switch. Two cells whose
    // bodies interleave two tenants' requests.
    std::size_t a4 = cells.size();
    for (bool flush_on_switch : {false, true}) {
        SweepCell c;
        c.profile = memcachedProfile();
        c.scheme = Scheme::Perspective;
        c.iterations = 24; // interleaved requests
        c.warmup = 0;
        c.tags = {{"ablation", "asid-tagging"},
                  {"mode", flush_on_switch ? "flush-on-switch"
                                           : "asid-tagged"}};
        c.body = [flush_on_switch](const SweepCell &cell) {
            Experiment e(cell.profile, Scheme::Perspective,
                         cell.seed);
            core::PerspectiveConfig cfg;
            cfg.flushOnContextSwitch = flush_on_switch;
            core::PerspectivePolicy pol(e.kernelState().ownership(),
                                        cfg, "switch");
            for (kernel::Pid p : {e.mainPid(), e.victimPid()}) {
                const auto &t = e.kernelState().task(p);
                pol.registerContext(t.asid, t.domain, e.isvView());
            }
            e.pipeline().setPolicy(&pol);
            RunResult r;
            for (unsigned i = 0; i < cell.iterations; ++i) {
                auto one = e.runRequestAs(i % 2 ? e.victimPid()
                                                : e.mainPid());
                r.cycles += one.cycles;
                r.instructions += one.instructions;
            }
            r.isvCacheHitRate = pol.isvCache().hitRate();
            r.dsvCacheHitRate = pol.dsvCache().hitRate();
            return r;
        };
        cells.push_back(std::move(c));
    }

    // Ablation 5: secure slab cost. Per app: packed slab (UNSAFE
    // stack) vs secure slab (Perspective stack, gating disabled).
    auto apps = datacenterSuite();
    std::size_t a5 = cells.size();
    for (const auto &w : apps) {
        cells.push_back(unsafeCell(w, "secure-slab"));
        SweepCell c;
        c.profile = w;
        c.scheme = Scheme::Perspective;
        c.iterations = kIterations;
        c.warmup = kWarmup;
        c.tags = {{"ablation", "secure-slab"},
                  {"slab", "secure"}};
        c.body = [](const SweepCell &cell) {
            // Isolate the allocator: secure-slab kernel, all
            // speculation gating off.
            Experiment e(cell.profile, Scheme::Perspective,
                         cell.seed);
            e.pipeline().setPolicy(nullptr);
            return e.run(cell.iterations, cell.warmup);
        };
        cells.push_back(std::move(c));
    }

    auto results = sweep.run(cells);

    if (!renderTables(sweep))
        return sweep.emitOutputs() ? 0 : 1;

    // ---- Render ---------------------------------------------------
    banner("Ablation 1: ISV/DSV cache capacity (nginx)");
    std::printf("%-10s %-12s %-12s %-12s\n", "entries", "overhead",
                "ISV hit", "DSV hit");
    rule(48);
    for (std::size_t k = 0; k < kEntries.size(); ++k) {
        const CellResult &r = results[a1 + 1 + k];
        std::printf("%-10u %10.1f%% %10.1f%% %10.1f%%\n",
                    kEntries[k],
                    100.0 * (norm(r, results[a1]) - 1.0),
                    100.0 * r.result.isvCacheHitRate,
                    100.0 * r.result.dsvCacheHitRate);
    }
    std::printf("[Table 7.1 picks 128: the kernel working set fits "
                "and hit rates reach ~99%%]\n");

    banner("Ablation 2: fill latency on a cache miss (mmap — "
           "allocation-heavy, DSVMT-cold)");
    std::printf("%-10s %-12s\n", "cycles", "overhead");
    rule(24);
    for (std::size_t k = 0; k < kLatencies.size(); ++k) {
        const CellResult &r = results[a2 + 1 + k];
        std::printf("%-10llu %10.2f%%\n",
                    static_cast<unsigned long long>(kLatencies[k]),
                    100.0 * (norm(r, results[a2]) - 1.0));
    }
    std::printf("[allocation-heavy paths are the one place refill "
                "speed shows: every fresh page's first access "
                "blocks for the refill]\n");

    banner("Ablation 3: view composition");
    std::printf("%-12s %-12s %-12s %-12s\n", "workload", "DSV-only",
                "ISV-only", "both");
    rule(50);
    for (std::size_t row = 0; row < comp_workloads.size(); ++row) {
        std::size_t base = a3 + row * 4;
        std::printf("%-12s %10.2f%% %10.2f%% %10.2f%%\n",
                    results[base].workload.c_str(),
                    100.0 * (norm(results[base + 1], results[base]) -
                             1.0),
                    100.0 * (norm(results[base + 2], results[base]) -
                             1.0),
                    100.0 * (norm(results[base + 3], results[base]) -
                             1.0));
    }
    std::printf("[costs compose roughly additively; security "
                "requires both halves — see bench_security]\n");

    banner("Ablation 4: ASID tagging of the ISV/DSV caches");
    std::printf("%-16s %-12s %-12s\n", "mode", "ISV hit", "DSV hit");
    rule(42);
    for (std::size_t k = 0; k < 2; ++k) {
        const CellResult &r = results[a4 + k];
        std::printf("%-16s %10.1f%% %10.1f%%\n",
                    r.tags.at("mode").c_str(),
                    100.0 * r.result.isvCacheHitRate,
                    100.0 * r.result.dsvCacheHitRate);
    }
    std::printf("[Section 6.2 tags entries with the ASID so context "
                "switches keep both caches warm]\n");

    banner("Ablation 5: secure slab allocator cost");
    std::printf("%-12s %-14s %-14s\n", "workload", "normal slab",
                "secure slab");
    rule(42);
    for (std::size_t row = 0; row < apps.size(); ++row) {
        const CellResult &n = results[a5 + row * 2];
        const CellResult &s = results[a5 + row * 2 + 1];
        double nc = static_cast<double>(n.result.cycles);
        double sc = static_cast<double>(s.result.cycles);
        std::printf("%-12s %12.0f %12.0f (%+.2f%%)\n",
                    n.workload.c_str(), nc, sc,
                    100.0 * (sc / nc - 1.0));
    }
    std::printf("[page-granular isolation costs almost nothing in "
                "cycles; its price is the 0.91%%-class memory "
                "fragmentation of bench_slab]\n");
    return sweep.emitOutputs() ? 0 : 1;
}
