/**
 * @file
 * Ablations of Perspective's design choices (DESIGN.md calls these
 * out; the paper motivates each in Sections 6.2 and 9.2):
 *
 *  1. ISV/DSV cache capacity — why 128 entries suffice;
 *  2. fill latency — how sensitive blocking-until-refill is;
 *  3. view composition — DSV-only / ISV-only / both (the taxonomy
 *     says both are needed; this shows each half's cost);
 *  4. ASID tagging of the lookup caches across context switches;
 *  5. the secure slab allocator's performance cost.
 */

#include <cstdio>

#include "common.hh"
#include "core/perspective.hh"
#include "workloads/experiment.hh"

using namespace perspective;
using namespace perspective::bench;
using namespace perspective::workloads;

namespace
{

/** Run `w` under Perspective with a custom config; returns cycles
 * normalized to UNSAFE plus the cache hit rates. */
struct AblationResult
{
    double norm = 0;
    double isvHit = 0;
    double dsvHit = 0;
};

AblationResult
runConfig(const WorkloadProfile &w, core::PerspectiveConfig cfg)
{
    Experiment base(w, Scheme::Unsafe);
    double u = static_cast<double>(
        base.run(kIterations, kWarmup).cycles);

    Experiment e(w, Scheme::Perspective);
    core::PerspectivePolicy pol(e.kernelState().ownership(), cfg,
                                "ablation");
    const auto &t = e.kernelState().task(e.mainPid());
    pol.registerContext(t.asid, t.domain, e.isvView());
    e.pipeline().setPolicy(&pol);

    AblationResult r;
    r.norm = e.run(kIterations, kWarmup).cycles / u;
    r.isvHit = pol.isvCache().hitRate();
    r.dsvHit = pol.dsvCache().hitRate();
    return r;
}

} // namespace

int
main()
{
    WorkloadProfile app = nginxProfile();
    WorkloadProfile mmap_bench, bigread_bench;
    for (const auto &w : lebenchSuite()) {
        if (w.name == "mmap")
            mmap_bench = w;
        if (w.name == "big-read")
            bigread_bench = w;
    }

    banner("Ablation 1: ISV/DSV cache capacity (nginx)");
    std::printf("%-10s %-12s %-12s %-12s\n", "entries", "overhead",
                "ISV hit", "DSV hit");
    rule(48);
    for (unsigned entries : {32u, 64u, 128u, 256u}) {
        core::PerspectiveConfig cfg;
        cfg.isvCacheEntries = entries;
        cfg.dsvCacheEntries = entries;
        auto r = runConfig(app, cfg);
        std::printf("%-10u %10.1f%% %10.1f%% %10.1f%%\n", entries,
                    100.0 * (r.norm - 1.0), 100.0 * r.isvHit,
                    100.0 * r.dsvHit);
    }
    std::printf("[Table 7.1 picks 128: the kernel working set fits "
                "and hit rates reach ~99%%]\n");

    banner("Ablation 2: fill latency on a cache miss (mmap — "
           "allocation-heavy, DSVMT-cold)");
    std::printf("%-10s %-12s\n", "cycles", "overhead");
    rule(24);
    for (sim::Cycle lat : {sim::Cycle{7}, sim::Cycle{14},
                           sim::Cycle{28}, sim::Cycle{56}}) {
        core::PerspectiveConfig cfg;
        cfg.fillLatency = lat;
        auto r = runConfig(mmap_bench, cfg);
        std::printf("%-10llu %10.2f%%\n",
                    static_cast<unsigned long long>(lat),
                    100.0 * (r.norm - 1.0));
    }
    std::printf("[allocation-heavy paths are the one place refill "
                "speed shows: every fresh page's first access "
                "blocks for the refill]\n");

    banner("Ablation 3: view composition");
    std::printf("%-12s %-12s %-12s %-12s\n", "workload", "DSV-only",
                "ISV-only", "both");
    rule(50);
    for (const auto &w : {mmap_bench, bigread_bench,
                          httpdProfile()}) {
        core::PerspectiveConfig dsv_only;
        dsv_only.enableIsv = false;
        core::PerspectiveConfig isv_only;
        isv_only.enableDsv = false;
        core::PerspectiveConfig both;
        std::printf("%-12s %10.2f%% %10.2f%% %10.2f%%\n",
                    w.name.c_str(),
                    100.0 * (runConfig(w, dsv_only).norm - 1.0),
                    100.0 * (runConfig(w, isv_only).norm - 1.0),
                    100.0 * (runConfig(w, both).norm - 1.0));
    }
    std::printf("[costs compose roughly additively; security "
                "requires both halves — see bench_security]\n");

    banner("Ablation 4: ASID tagging of the ISV/DSV caches");
    std::printf("%-16s %-12s %-12s\n", "mode", "ISV hit", "DSV hit");
    rule(42);
    {
        auto interleave = [](bool flush_on_switch) {
            Experiment e(memcachedProfile(), Scheme::Perspective);
            core::PerspectiveConfig cfg;
            cfg.flushOnContextSwitch = flush_on_switch;
            core::PerspectivePolicy pol(e.kernelState().ownership(),
                                        cfg, "switch");
            for (kernel::Pid p : {e.mainPid(), e.victimPid()}) {
                const auto &t = e.kernelState().task(p);
                pol.registerContext(t.asid, t.domain, e.isvView());
            }
            e.pipeline().setPolicy(&pol);
            for (unsigned i = 0; i < 24; ++i)
                e.runRequestAs(i % 2 ? e.victimPid() : e.mainPid());
            return std::make_pair(pol.isvCache().hitRate(),
                                  pol.dsvCache().hitRate());
        };
        auto [i_tag, d_tag] = interleave(false);
        auto [i_flush, d_flush] = interleave(true);
        std::printf("%-16s %10.1f%% %10.1f%%\n", "ASID-tagged",
                    100.0 * i_tag, 100.0 * d_tag);
        std::printf("%-16s %10.1f%% %10.1f%%\n", "flush-on-switch",
                    100.0 * i_flush, 100.0 * d_flush);
    }
    std::printf("[Section 6.2 tags entries with the ASID so context "
                "switches keep both caches warm]\n");

    banner("Ablation 5: secure slab allocator cost");
    std::printf("%-12s %-14s %-14s\n", "workload", "normal slab",
                "secure slab");
    rule(42);
    for (const auto &w : datacenterSuite()) {
        // Unsafe scheme toggles the secure allocator off; Perspective
        // on. Compare UNSAFE cycles under both allocator modes by
        // running the unsafe scheme against each kernel config.
        Experiment normal(w, Scheme::Unsafe);   // packed slab
        Experiment secure(w, Scheme::Perspective); // secure slab
        double n = static_cast<double>(
            normal.run(kIterations, kWarmup).cycles);
        // Isolate the allocator by disabling all gating on the
        // secure-slab stack.
        secure.pipeline().setPolicy(nullptr);
        double s2 = static_cast<double>(
            secure.run(kIterations, kWarmup).cycles);
        std::printf("%-12s %12.0f %12.0f (%+.2f%%)\n", w.name.c_str(),
                    n, s2, 100.0 * (s2 / n - 1.0));
    }
    std::printf("[page-granular isolation costs almost nothing in "
                "cycles; its price is the 0.91%%-class memory "
                "fragmentation of bench_slab]\n");
    return 0;
}
