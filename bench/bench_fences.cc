/**
 * @file
 * Table 10.1: breakdown of fenced instructions between ISV and DSV
 * causes, plus the fences-per-kilo-instruction rates (Section 9.2,
 * "Breakdown of Speculation Views").
 */

#include <cstdio>
#include <vector>

#include "common.hh"
#include "workloads/experiment.hh"

using namespace perspective;
using namespace perspective::bench;
using namespace perspective::workloads;

namespace
{

struct Row
{
    double isv_share = 0;
    double dsv_share = 0;
    double isv_per_ki = 0;
    double dsv_per_ki = 0;
};

Row
measure(const WorkloadProfile &w, Scheme s)
{
    Experiment e(w, s);
    auto r = e.run(kIterations, kWarmup);
    Row out;
    double total = static_cast<double>(r.isvFences + r.dsvFences);
    if (total > 0) {
        out.isv_share = 100.0 * r.isvFences / total;
        out.dsv_share = 100.0 * r.dsvFences / total;
    }
    double ki = r.instructions / 1000.0;
    out.isv_per_ki = r.isvFences / ki;
    out.dsv_per_ki = r.dsvFences / ki;
    return out;
}

} // namespace

int
main()
{
    banner("Table 10.1: Percentage of fenced instructions due to "
           "ISV and DSV");
    std::printf("%-14s %-12s %-16s %-22s\n", "Config", "Workload",
                "ISV%% / DSV%%", "fences per kilo-inst");
    rule(70);

    struct SchemeRow
    {
        Scheme s;
        const char *label;
    };
    const SchemeRow rows[] = {
        {Scheme::PerspectiveStatic, "ISV-S/DSV"},
        {Scheme::Perspective, "ISV/DSV"},
        {Scheme::PerspectivePlusPlus, "ISV++/DSV"},
    };

    for (const auto &[scheme, label] : rows) {
        // LEBench: average over the suite.
        Row avg;
        auto suite = lebenchSuite();
        for (const auto &w : suite) {
            Row r = measure(w, scheme);
            avg.isv_share += r.isv_share;
            avg.dsv_share += r.dsv_share;
            avg.isv_per_ki += r.isv_per_ki;
            avg.dsv_per_ki += r.dsv_per_ki;
        }
        double n = static_cast<double>(suite.size());
        std::printf("%-14s %-12s %4.0f%% / %-4.0f%%    "
                    "%5.1f isv + %5.1f dsv\n",
                    label, "LEBench", avg.isv_share / n,
                    avg.dsv_share / n, avg.isv_per_ki / n,
                    avg.dsv_per_ki / n);
        for (const auto &w : datacenterSuite()) {
            Row r = measure(w, scheme);
            std::printf("%-14s %-12s %4.0f%% / %-4.0f%%    "
                        "%5.1f isv + %5.1f dsv\n",
                        label, w.name.c_str(), r.isv_share,
                        r.dsv_share, r.isv_per_ki, r.dsv_per_ki);
        }
    }

    std::printf("\n[paper: ISV share 12-27%%, DSV share 73-88%%; "
                "~9 ISV and ~37 DSV fences per kilo-instruction]\n");
    return 0;
}
