/**
 * @file
 * Shared helpers for the experiment harnesses: fixed-width table
 * printing and the standard iteration counts.
 */

#ifndef PERSPECTIVE_BENCH_COMMON_HH
#define PERSPECTIVE_BENCH_COMMON_HH

#include <cstdio>
#include <string>
#include <vector>

#include "harness/sweep.hh"

namespace perspective::bench
{

/** Measured iterations per workload (after warmup). */
inline constexpr unsigned kIterations = 30;
inline constexpr unsigned kWarmup = 3;

/** Print a horizontal rule sized to @p width. */
inline void
rule(unsigned width)
{
    for (unsigned i = 0; i < width; ++i)
        std::putchar('-');
    std::putchar('\n');
}

/** Print a section banner. */
inline void
banner(const std::string &title)
{
    std::printf("\n=== %s ===\n\n", title.c_str());
}

/**
 * Whether this run should render its human-readable tables. The grid
 * benches index results positionally (every table row divides by the
 * UNSAFE cell of its stride), but a `--shard K/N` run executes only
 * its own cells — the others are zeroed placeholders — so tables are
 * meaningless until `bench_report --merge` recombines the shard
 * JSONs; a fleet *worker* (`--connect`) likewise holds only the
 * cells it happened to serve (the coordinator renders the full
 * grid). Prints a note and returns false for both.
 */
inline bool
renderTables(const harness::SweepRunner &sweep)
{
    if (sweep.isFleetWorker()) {
        std::printf("[fleet worker: tables skipped — the "
                    "coordinator renders the full grid]\n");
        return false;
    }
    if (!sweep.sharded())
        return true;
    std::printf("[shard %u/%u: tables skipped — recombine the "
                "per-shard JSONs with bench_report --merge]\n",
                sweep.shardIndex(), sweep.shardCount());
    return false;
}

} // namespace perspective::bench

#endif // PERSPECTIVE_BENCH_COMMON_HH
