/**
 * @file
 * Shared helpers for the experiment harnesses: fixed-width table
 * printing and the standard iteration counts.
 */

#ifndef PERSPECTIVE_BENCH_COMMON_HH
#define PERSPECTIVE_BENCH_COMMON_HH

#include <cstdio>
#include <string>
#include <vector>

namespace perspective::bench
{

/** Measured iterations per workload (after warmup). */
inline constexpr unsigned kIterations = 30;
inline constexpr unsigned kWarmup = 3;

/** Print a horizontal rule sized to @p width. */
inline void
rule(unsigned width)
{
    for (unsigned i = 0; i < width; ++i)
        std::putchar('-');
    std::putchar('\n');
}

/** Print a section banner. */
inline void
banner(const std::string &title)
{
    std::printf("\n=== %s ===\n\n", title.c_str());
}

} // namespace perspective::bench

#endif // PERSPECTIVE_BENCH_COMMON_HH
