/**
 * @file
 * Figure 9.1: speedup of the Kasper-style scanner's gadget discovery
 * rate (gadgets/hour) when its search space is bounded by each
 * workload's ISV. Both campaigns fuzz the same syscall corpus; the
 * bounded one skips instrumentation and taint analysis for functions
 * that can never execute speculatively.
 */

#include <cstdio>

#include "analysis/scanner.hh"
#include "common.hh"
#include "harness/sweep.hh"
#include "workloads/experiment.hh"

using namespace perspective;
using namespace perspective::analysis;
using namespace perspective::bench;
using namespace perspective::workloads;

namespace
{

double
speedupFor(const WorkloadProfile &w, ScanResult *bounded_out)
{
    Experiment e(w, Scheme::Perspective);
    GadgetScanner scanner(e.image(), e.memory(), e.executor(),
                          e.mainPid());
    ScannerConfig cfg;
    cfg.executions = 1500;
    auto bounded = scanner.scan(cfg, e.isvView());
    auto unbounded = scanner.scan(cfg);
    if (bounded_out)
        *bounded_out = bounded;
    return bounded.discoveryRate() / unbounded.discoveryRate();
}

} // namespace

int
main()
{
    banner("Figure 9.1: Speedup of Kasper's gadget discovery rate "
           "(gadgets/hour)");
    std::printf("%-10s %-9s %-22s %-22s\n", "Workload", "Speedup",
                "bounded (found, g/h)", "unbounded bench note");
    rule(60);

    std::vector<double> speedups;

    // LEBench as one campaign over the whole suite's union view is
    // approximated by its most representative microbenchmarks.
    std::vector<WorkloadProfile> workloads = datacenterSuite();
    {
        auto suite = lebenchSuite();
        for (const auto &w : suite) {
            if (w.name == "poll" || w.name == "read")
                workloads.insert(workloads.begin(), w);
        }
    }

    for (const auto &w : workloads) {
        ScanResult bounded;
        double s = speedupFor(w, &bounded);
        speedups.push_back(s);
        std::printf("%-10s %6.2fx   %4u gadgets, %7.1f g/h\n",
                    w.name.c_str(), s, bounded.gadgetsFound,
                    bounded.discoveryRate());
    }
    std::printf("%-10s %6.2fx\n", "geomean",
                harness::geomean(speedups));
    std::printf("\n[paper: 1.14-2.23x per workload, 1.57x average]\n");
    return 0;
}
