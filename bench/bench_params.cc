/**
 * @file
 * Table 7.1: full-system simulation parameters, printed from the live
 * configuration objects (not hard-coded strings) so the table always
 * reflects what the harness actually simulates.
 */

#include <cstdio>

#include "common.hh"
#include "sim/cache.hh"
#include "sim/pipeline.hh"

using namespace perspective;
using namespace perspective::sim;

int
main()
{
    bench::banner("Table 7.1: Full-System Simulation Parameters");

    PipelineParams p;
    std::printf("%-20s %s\n", "Architecture",
                "out-of-order x86-like core at 2.0 GHz");
    std::printf("%-20s %u-issue, out-of-order, %u Load Queue entries,"
                " %u Store Queue entries,\n",
                "Core", p.width, p.lqSize, p.sqSize);
    std::printf("%-20s %u ROB entries, L-TAGE-style branch predictor,"
                " 4096 BTB entries,\n", "", p.robSize);
    std::printf("%-20s 16 RAS entries, %llu-cycle minimum branch "
                "resolution depth\n", "",
                static_cast<unsigned long long>(
                    p.branchResolveDepth));

    auto show_cache = [](const char *name, const CacheParams &c) {
        std::printf("%-20s %u KB, %u B line, %u-way, %llu cycle RT "
                    "latency\n",
                    name, c.size_bytes / 1024, c.line_bytes, c.assoc,
                    static_cast<unsigned long long>(c.hit_latency));
    };
    show_cache("Private L1-I Cache", defaultL1I());
    show_cache("Private L1-D Cache", defaultL1D());
    show_cache("Shared L2 Cache", defaultL2());
    std::printf("%-20s %llu cycles RT latency after L2 (50 ns at 2 "
                "GHz)\n", "DRAM",
                static_cast<unsigned long long>(p.dramLatency));
    std::printf("%-20s 128 entries, 32 sets, 4-way; 57 bits/entry "
                "(+128b region payload)\n", "ISV Cache");
    std::printf("%-20s 128 entries, 32 sets, 4-way; 53 bits/entry\n",
                "DSV Cache");
    std::printf("%-20s miniature Linux-like kernel, 28K functions, "
                "51 syscalls\n", "OS Kernel");
    return 0;
}
