/**
 * @file
 * Section 9.2 memory fragmentation and domain reassignment.
 *
 * Fragmentation: a slabtop-style census over a realistically
 * populated kernel (three tenants, thousands of live objects across
 * the kmalloc size classes) comparing the packed baseline allocator
 * against Perspective's secure slab allocator.
 *
 * Domain reassignment: the fraction and rate of slab frees that drain
 * a page back to the buddy allocator while the datacenter workloads
 * run, requiring an ownership change.
 */

#include <cstdio>
#include <vector>

#include "common.hh"
#include "workloads/experiment.hh"

using namespace perspective;
using namespace perspective::bench;
using namespace perspective::kernel;
using namespace perspective::workloads;

namespace
{

/** slabtop ratio: live bytes / backed bytes across all caches. */
double
utilizationOf(KernelState &ks)
{
    double active = 0, slots = 0;
    for (const auto &cache : ks.slabs()) {
        active += static_cast<double>(cache->activeObjects()) *
                  cache->objectSize();
        slots += static_cast<double>(cache->totalSlots()) *
                 cache->objectSize();
    }
    return slots == 0 ? 1.0 : active / slots;
}

/** Populate a kernel with three tenants' worth of live objects. */
double
populatedUtilization(bool secure)
{
    sim::Memory mem;
    KernelParams kp;
    kp.secureSlab = secure;
    KernelState ks(mem, kp);

    // Realistic object census, scaled down from slabinfo: small
    // objects dominate.
    struct Mix
    {
        std::uint32_t size;
        unsigned count;
    };
    const Mix mix[] = {{8, 1600},  {16, 1200}, {32, 1000},
                       {64, 1400}, {128, 900}, {256, 800},
                       {512, 400}, {1024, 160}, {2048, 90}};

    for (int tenant = 0; tenant < 3; ++tenant) {
        CgroupId cg = ks.createCgroup("t" + std::to_string(tenant));
        Pid pid = ks.createProcess(cg);
        DomainId dom = ks.domainOf(pid);
        for (const Mix &m : mix) {
            for (unsigned i = 0; i < m.count; ++i)
                ks.kmalloc(m.size, dom);
        }
    }
    return utilizationOf(ks);
}

} // namespace

int
main()
{
    banner("Section 9.2: Memory fragmentation (slabtop utilization)");
    double normal = populatedUtilization(false);
    double secure = populatedUtilization(true);
    std::printf("packed (baseline) slab utilization: %6.2f%%\n",
                100.0 * normal);
    std::printf("secure slab utilization:            %6.2f%%\n",
                100.0 * secure);
    std::printf("memory overhead of isolation:       %6.2f%%\n",
                100.0 * (normal - secure));
    std::printf("[paper: 0.91%% memory usage overhead]\n");

    banner("Section 9.2: Domain reassignment (page-level slab ops)");
    std::printf("%-12s %-12s %-14s %-12s %-14s\n", "workload",
                "slab frees", "page returns", "% of frees",
                "returns/sec");
    rule(70);
    for (const auto &w : datacenterSuite()) {
        Experiment e(w, Scheme::Perspective);
        // Steady state only: tracing/warmup churn (process creation
        // and exit) is setup, not serving.
        e.run(0, 3);
        std::uint64_t frees0 = 0, reassigns0 = 0;
        for (const auto &cache : e.kernelState().slabs()) {
            frees0 += cache->totalFrees();
            reassigns0 += cache->domainReassignments();
        }
        auto r = e.run(60, 0);
        std::uint64_t frees = 0, reassigns = 0;
        for (const auto &cache : e.kernelState().slabs()) {
            frees += cache->totalFrees();
            reassigns += cache->domainReassignments();
        }
        frees -= frees0;
        reassigns -= reassigns0;
        double pct =
            frees == 0 ? 0.0 : 100.0 * reassigns / frees;
        // Returns per second at the simulated 2 GHz clock.
        double per_sec = r.cycles == 0
                             ? 0.0
                             : reassigns / (r.cycles / 2.0e9);
        std::printf("%-12s %12llu %14llu %11.3f%% %12.1f\n",
                    w.name.c_str(),
                    static_cast<unsigned long long>(frees),
                    static_cast<unsigned long long>(reassigns), pct,
                    per_sec);
    }
    std::printf("\n[paper: 0.003-0.23%% of frees; 2-96 page returns "
                "per second]\n");
    return 0;
}
