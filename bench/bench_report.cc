/**
 * @file
 * Sweep-result comparison and regression reporting: reads one or
 * more sweep JSON files (emitted by any bench's --json flag), prints
 * a per-file summary, and — given a baseline file — a per-cell delta
 * report on the deterministic metrics (cycles, instructions,
 * fences). Cells are matched by their provenance config hash, so a
 * reordered grid still lines up.
 *
 *   bench_report out.json                       # summarize
 *   bench_report out.json --baseline base.json  # per-cell deltas
 *   bench_report out.json --baseline base.json --check
 *       # exit 1 if any delta is non-zero (CI regression gate;
 *       # two runs of the same build must agree exactly)
 */

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "harness/json.hh"
#include "harness/sweep.hh"

using perspective::harness::Json;

namespace
{

struct Cell
{
    std::string workload;
    std::string scheme;
    std::string key; ///< config hash (+ duplicate suffix)
    bool ok = false;
    std::uint64_t cycles = 0;
    std::uint64_t instructions = 0;
    std::uint64_t fences = 0;
};

struct SweepFile
{
    std::string path;
    std::string bench;
    std::string git;
    double wallSeconds = 0;
    std::vector<Cell> cells;
};

std::uint64_t
uintOr0(const Json &obj, const char *field)
{
    return obj.contains(field) && obj.at(field).isNumber()
               ? obj.at(field).asUint()
               : 0;
}

SweepFile
loadSweep(const std::string &path)
{
    std::ifstream is(path);
    if (!is) {
        std::fprintf(stderr, "bench_report: cannot read '%s'\n",
                     path.c_str());
        std::exit(2);
    }
    std::ostringstream buf;
    buf << is.rdbuf();
    Json doc = Json::parse(buf.str());

    SweepFile f;
    f.path = path;
    if (doc.contains("bench"))
        f.bench = doc.at("bench").asString();
    if (doc.contains("git"))
        f.git = doc.at("git").asString();
    if (doc.contains("wall_seconds"))
        f.wallSeconds = doc.at("wall_seconds").asDouble();

    // Duplicate configurations (the same cell run twice in one grid)
    // disambiguate by occurrence index, preserving grid order.
    std::map<std::string, unsigned> seen;
    for (const Json &cj : doc.at("cells").asArray()) {
        Cell c;
        c.workload = cj.at("workload").asString();
        c.scheme = cj.at("scheme").asString();
        c.ok = cj.at("ok").asBool();
        c.cycles = uintOr0(cj, "cycles");
        c.instructions = uintOr0(cj, "instructions");
        c.fences = uintOr0(cj, "fences");
        std::string hash =
            cj.contains("provenance")
                ? cj.at("provenance").at("config_hash").asString()
                : c.workload + "|" + c.scheme; // pre-provenance files
        unsigned n = seen[hash]++;
        c.key = hash + "#" + std::to_string(n);
        f.cells.push_back(std::move(c));
    }
    return f;
}

void
summarize(const SweepFile &f)
{
    std::uint64_t failed = 0;
    for (const Cell &c : f.cells)
        failed += c.ok ? 0 : 1;
    std::printf("%s: bench=%s git=%s cells=%zu failed=%llu "
                "wall=%.2fs\n",
                f.path.c_str(), f.bench.c_str(),
                f.git.empty() ? "?" : f.git.c_str(),
                f.cells.size(),
                static_cast<unsigned long long>(failed),
                f.wallSeconds);
}

/** Signed delta column: "+12345" / "0". */
std::string
delta(std::uint64_t now, std::uint64_t base)
{
    std::int64_t d = static_cast<std::int64_t>(now) -
                     static_cast<std::int64_t>(base);
    char buf[32];
    std::snprintf(buf, sizeof buf, "%+lld",
                  static_cast<long long>(d));
    return d == 0 ? "0" : buf;
}

unsigned
compare(const SweepFile &now, const SweepFile &base, bool verbose)
{
    std::map<std::string, const Cell *> baseByKey;
    for (const Cell &c : base.cells)
        baseByKey[c.key] = &c;

    unsigned diffs = 0, unmatched = 0;
    std::printf("\n%-14s %-20s %14s %14s %10s\n", "workload",
                "scheme", "d(cycles)", "d(insts)", "d(fences)");
    for (const Cell &c : now.cells) {
        auto it = baseByKey.find(c.key);
        if (it == baseByKey.end()) {
            ++unmatched;
            std::printf("%-14s %-20s %s\n", c.workload.c_str(),
                        c.scheme.c_str(),
                        "(no matching baseline cell)");
            continue;
        }
        const Cell &b = *it->second;
        bool same = c.cycles == b.cycles &&
                    c.instructions == b.instructions &&
                    c.fences == b.fences;
        if (!same)
            ++diffs;
        if (same && !verbose)
            continue;
        std::printf("%-14s %-20s %14s %14s %10s\n",
                    c.workload.c_str(), c.scheme.c_str(),
                    delta(c.cycles, b.cycles).c_str(),
                    delta(c.instructions, b.instructions).c_str(),
                    delta(c.fences, b.fences).c_str());
    }
    std::printf("\n%u of %zu cells differ from baseline"
                " (%u unmatched)\n",
                diffs, now.cells.size(), unmatched);
    return diffs + unmatched;
}

void
usage(int code)
{
    std::printf(
        "usage: bench_report FILE.json [FILE2.json ...]\n"
        "           [--baseline BASE.json] [--check] [--verbose]\n"
        "  --baseline F  per-cell delta of every input against F\n"
        "  --check       exit 1 if any cell differs from the\n"
        "                baseline (regression gate)\n"
        "  --verbose     list identical cells too\n");
    std::exit(code);
}

} // namespace

int
main(int argc, char **argv)
{
    std::vector<std::string> inputs;
    std::string baselinePath;
    bool check = false, verbose = false;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--baseline") {
            if (i + 1 >= argc)
                usage(2);
            baselinePath = argv[++i];
        } else if (arg.rfind("--baseline=", 0) == 0) {
            baselinePath = arg.substr(11);
        } else if (arg == "--check") {
            check = true;
        } else if (arg == "--verbose") {
            verbose = true;
        } else if (arg == "--help" || arg == "-h") {
            usage(0);
        } else if (!arg.empty() && arg[0] == '-') {
            std::fprintf(stderr,
                         "bench_report: unknown argument '%s'\n",
                         arg.c_str());
            usage(2);
        } else {
            inputs.push_back(arg);
        }
    }
    if (inputs.empty())
        usage(2);
    if (check && baselinePath.empty()) {
        std::fprintf(stderr,
                     "bench_report: --check needs --baseline\n");
        return 2;
    }

    unsigned total_diffs = 0;
    for (const std::string &path : inputs)
        summarize(loadSweep(path));

    if (!baselinePath.empty()) {
        SweepFile base = loadSweep(baselinePath);
        std::printf("\nbaseline: ");
        summarize(base);
        for (const std::string &path : inputs)
            total_diffs += compare(loadSweep(path), base, verbose);
    }

    if (check && total_diffs > 0) {
        std::fprintf(stderr,
                     "bench_report: FAIL — %u differing cell(s)\n",
                     total_diffs);
        return 1;
    }
    return 0;
}
