/**
 * @file
 * Sweep-result comparison and regression reporting: reads one or
 * more sweep JSON files (emitted by any bench's --json flag), prints
 * a per-file summary, and — given a baseline file — a per-cell delta
 * report on the deterministic metrics (cycles, instructions,
 * fences). Cells are matched by their provenance config hash, so a
 * reordered grid still lines up.
 *
 *   bench_report out.json                       # summarize
 *   bench_report out.json --baseline base.json  # per-cell deltas
 *   bench_report out.json --baseline base.json --check
 *       # exit 1 if any delta is non-zero (CI regression gate;
 *       # two runs of the same build must agree exactly)
 *
 * Throughput is reported separately from the deterministic metrics:
 * every summary and delta row carries a MIPS column (simulated
 * instructions / cell wall seconds), and --perf-baseline gates on
 * aggregate throughput with a tolerance (--perf-threshold, default
 * 0.80) instead of exact equality, because wall clock is noisy where
 * cycle counts are not.
 *
 *   bench_report out.json --perf-baseline base.json
 *       # exit 1 if aggregate MIPS < 0.80x the baseline's
 *
 * Sampled sweeps (PERSPECTIVE_SAMPLE, DESIGN §5.8) are statistical:
 * --check refuses files containing sampled cells, and
 * --accuracy-baseline instead gates each input's per-scheme mean
 * overhead (geomean of cycles normalized to the unsafe scheme,
 * matched by workload+scheme) against an exact sweep within a
 * relative-error threshold (--accuracy-threshold, default 0.02):
 *
 *   bench_report sampled.json --accuracy-baseline exact.json
 *
 * Shard recombination: sweeps run with `--shard K/N` each emit a
 * partial JSON; --merge stitches them back into one complete sweep
 * document (cells restored to grid order), refusing duplicated,
 * overlapping, or missing shards:
 *
 *   bench_report --merge merged.json shard1.json shard2.json
 */

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "harness/json.hh"
#include "harness/sweep.hh"

using perspective::harness::Json;

namespace
{

struct Cell
{
    std::string workload;
    std::string scheme;
    std::string key; ///< config hash (+ duplicate suffix)
    bool fallbackKey = false; ///< no provenance: workload|scheme key
    bool ok = false;
    std::uint64_t cycles = 0;
    std::uint64_t instructions = 0;
    std::uint64_t fences = 0;
    double wallSeconds = 0;
    double mips = 0; ///< instructions / wallSeconds / 1e6

    // Transient-leakage accounting (zero for pre-schema-4 files).
    std::uint64_t secretLoads = 0;
    std::uint64_t leakTransmissions = 0;
    std::uint64_t leakBytes = 0; ///< bytes_transmitted

    // Sampled-simulation block (schema 5). A sampled cell's cycles
    // are a statistical extrapolation: never bit-comparable, so
    // --check refuses files containing any; --accuracy-baseline is
    // the sanctioned comparison.
    bool sampled = false;
    std::uint64_t windows = 0;
    double cpiMean = 0;
    double cpiCi95 = 0;
    double relError = 0; ///< ci95 / mean on the CPI estimate
};

struct SweepFile
{
    std::string path;
    std::string bench;
    std::string git;
    double wallSeconds = 0;
    std::uint64_t fallbackKeys = 0; ///< cells without provenance
    std::vector<Cell> cells;

    /**
     * Config-hash → cell index, built lazily on first use: summaries
     * never need it, and a baseline compared against several inputs
     * pays the build exactly once instead of once per compare().
     */
    const std::map<std::string, const Cell *> &
    byKey() const
    {
        if (byKey_.empty() && !cells.empty())
            for (const Cell &c : cells)
                byKey_[c.key] = &c;
        return byKey_;
    }

    // Fleet-mode schedule block (schema: schedule.fleet), zero when
    // the sweep ran single-process.
    bool fleet = false;
    std::uint64_t fleetWorkers = 0;
    std::uint64_t fleetSteals = 0;
    std::uint64_t fleetResent = 0;
    double makespan = 0;          ///< schedule.makespan
    double staticShardEst = 0;    ///< est. static 1/N-shard makespan

    // Fast-path telemetry summed over every cell's stats block
    // (zero when the file predates the counters).
    std::uint64_t gateChecks = 0;   ///< gate verdicts computed
    std::uint64_t gateElided = 0;   ///< blocked-load rechecks skipped
    std::uint64_t mruHits = 0;      ///< DSVMT-walk MRU granule hits
    std::uint64_t mruLookups = 0;   ///< DSVMT-walk lookups

    // Fast-forward engine coverage (DESIGN §5.5) and the predecoded
    // superblock cache, summed over the cells' stats blocks. The
    // uop/cycle denominators are the simulated totals of the ok
    // cells.
    std::uint64_t ffUops = 0;       ///< uops committed via the replica
    std::uint64_t ffCycles = 0;     ///< cycles skipped/replicated
    std::uint64_t sbHits = 0;       ///< superblock cache hits
    std::uint64_t sbMisses = 0;     ///< superblock cache builds
    std::uint64_t simCycles = 0;    ///< total simulated cycles (ok)
    std::uint64_t simInstructions = 0; ///< total simulated uops (ok)

    // Dynamic-update exposure: stale allows plus the transient-gap
    // histogram, aggregated count-weighted over the cells (the JSON
    // carries per-cell percentile summaries, not raw samples).
    std::uint64_t staleAllows = 0;
    std::uint64_t gapSamples = 0;
    double gapP50W = 0; ///< sum of per-cell p50 * count
    double gapP99W = 0; ///< sum of per-cell p99 * count

    // Sampled-simulation presence and aggregate precision (schema 5).
    std::uint64_t sampledCells = 0;
    std::uint64_t sampledWindows = 0;
    double relErrSum = 0; ///< sum of per-cell rel_error
    double relErrMax = 0;

    // Transient-leakage totals over all cells (schema 4).
    std::uint64_t secretLoads = 0;
    std::uint64_t bytesAtRisk = 0;
    std::uint64_t leakTransmissions = 0;
    std::uint64_t leakBytes = 0;

    // Structured event-log health (doc-level "trace" block).
    std::uint64_t traceDropped = 0;
    std::vector<std::uint64_t> traceDroppedByLane;

  private:
    mutable std::map<std::string, const Cell *> byKey_;
};

std::uint64_t
uintOr0(const Json &obj, const char *field)
{
    return obj.contains(field) && obj.at(field).isNumber()
               ? obj.at(field).asUint()
               : 0;
}

/**
 * Load a sweep document. With @p skipHeavy (set under --check, which
 * only compares the deterministic counters) the bulk per-cell
 * sub-objects — histograms and time series — are syntax-checked but
 * never materialized, so a large baseline parses without allocating
 * for payloads the comparison never reads. The dependent telemetry
 * (transient-gap percentiles) is simply absent from the summary in
 * that mode; every reader already guards on presence. @p verbose
 * prints the parse cost to pin the win.
 */
SweepFile
loadSweep(const std::string &path, bool skipHeavy = false,
          bool verbose = false)
{
    std::ifstream is(path);
    if (!is) {
        std::fprintf(stderr, "bench_report: cannot read '%s'\n",
                     path.c_str());
        std::exit(2);
    }
    std::ostringstream buf;
    buf << is.rdbuf();
    const std::string &text = buf.str();
    auto t0 = std::chrono::steady_clock::now();
    Json doc;
    if (skipHeavy) {
        Json::ParseOptions opts;
        opts.skipObjectKeys = {"histograms", "timeseries"};
        doc = Json::parse(text, opts);
    } else {
        doc = Json::parse(text);
    }
    if (verbose) {
        double ms = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
        std::printf("parse %s: %zu bytes in %.1f ms%s\n",
                    path.c_str(), text.size(), ms,
                    skipHeavy ? " (histograms/timeseries skipped)"
                              : "");
    }

    SweepFile f;
    f.path = path;
    if (doc.contains("bench"))
        f.bench = doc.at("bench").asString();
    if (doc.contains("git"))
        f.git = doc.at("git").asString();
    if (doc.contains("wall_seconds"))
        f.wallSeconds = doc.at("wall_seconds").asDouble();
    if (doc.contains("schedule")) {
        const Json &sj = doc.at("schedule");
        if (sj.contains("makespan"))
            f.makespan = sj.at("makespan").asDouble();
        if (sj.contains("fleet")) {
            const Json &fl = sj.at("fleet");
            f.fleet = true;
            f.fleetWorkers = uintOr0(fl, "workers");
            f.fleetSteals = uintOr0(fl, "steals");
            f.fleetResent = uintOr0(fl, "stragglers_resent");
            if (fl.contains("static_shard_makespan_est"))
                f.staticShardEst =
                    fl.at("static_shard_makespan_est").asDouble();
        }
    }

    // Duplicate configurations (the same cell run twice in one grid)
    // disambiguate by occurrence index, preserving grid order.
    std::map<std::string, unsigned> seen;
    for (const Json &cj : doc.at("cells").asArray()) {
        Cell c;
        c.workload = cj.at("workload").asString();
        c.scheme = cj.at("scheme").asString();
        c.ok = cj.at("ok").asBool();
        c.cycles = uintOr0(cj, "cycles");
        c.instructions = uintOr0(cj, "instructions");
        c.fences = uintOr0(cj, "fences");
        if (cj.contains("wall_seconds"))
            c.wallSeconds = cj.at("wall_seconds").asDouble();
        if (cj.contains("mips") && cj.at("mips").isNumber())
            c.mips = cj.at("mips").asDouble();
        else if (c.wallSeconds > 0) // pre-"mips" files
            c.mips = static_cast<double>(c.instructions) /
                     c.wallSeconds / 1e6;
        std::string hash;
        if (cj.contains("provenance")) {
            hash = cj.at("provenance").at("config_hash").asString();
        } else {
            // Pre-provenance files: a last-resort key that cannot
            // tell apart cells differing only in seed/iterations/
            // tags. Warned about below; fatal under --strict.
            hash = c.workload + "|" + c.scheme;
            c.fallbackKey = true;
            ++f.fallbackKeys;
        }
        unsigned n = seen[hash]++;
        c.key = hash + "#" + std::to_string(n);
        if (cj.contains("stats")) {
            const Json &st = cj.at("stats");
            f.gateChecks += uintOr0(st, "gate.checks");
            f.gateElided += uintOr0(st, "gate.elided");
            f.mruHits += uintOr0(st, "dsvmt.mru.hits");
            f.mruLookups += uintOr0(st, "dsvmt.mru.lookups");
            f.staleAllows +=
                uintOr0(st, "perspective.revocation.stale_allows");
            f.ffUops += uintOr0(st, "ff.uops");
            f.ffCycles += uintOr0(st, "ff.cycles");
            f.sbHits += uintOr0(st, "sb.cache.hits");
            f.sbMisses += uintOr0(st, "sb.cache.misses");
        }
        if (c.ok) {
            f.simCycles += c.cycles;
            f.simInstructions += c.instructions;
        }
        if (cj.contains("histograms") &&
            cj.at("histograms").contains("transient_gap_cycles")) {
            const Json &h =
                cj.at("histograms").at("transient_gap_cycles");
            std::uint64_t n = uintOr0(h, "count");
            f.gapSamples += n;
            if (n > 0) {
                f.gapP50W += h.at("p50").asDouble() *
                             static_cast<double>(n);
                f.gapP99W += h.at("p99").asDouble() *
                             static_cast<double>(n);
            }
        }
        if (cj.contains("sampling")) {
            const Json &sj = cj.at("sampling");
            c.sampled = true;
            c.windows = uintOr0(sj, "windows");
            if (sj.contains("cpi_mean"))
                c.cpiMean = sj.at("cpi_mean").asDouble();
            if (sj.contains("cpi_ci95"))
                c.cpiCi95 = sj.at("cpi_ci95").asDouble();
            if (sj.contains("rel_error"))
                c.relError = sj.at("rel_error").asDouble();
            ++f.sampledCells;
            f.sampledWindows += c.windows;
            f.relErrSum += c.relError;
            f.relErrMax = std::max(f.relErrMax, c.relError);
        }
        if (cj.contains("leakage")) {
            const Json &lj = cj.at("leakage");
            c.secretLoads = uintOr0(lj, "secret_loads");
            c.leakTransmissions = uintOr0(lj, "transmissions");
            c.leakBytes = uintOr0(lj, "bytes_transmitted");
            f.secretLoads += c.secretLoads;
            f.bytesAtRisk += uintOr0(lj, "bytes_at_risk");
            f.leakTransmissions += c.leakTransmissions;
            f.leakBytes += c.leakBytes;
        }
        f.cells.push_back(std::move(c));
    }
    if (doc.contains("trace")) {
        const Json &tj = doc.at("trace");
        f.traceDropped = uintOr0(tj, "dropped");
        if (tj.contains("dropped_by_lane"))
            for (const Json &d : tj.at("dropped_by_lane").asArray())
                f.traceDroppedByLane.push_back(d.asUint());
    }
    if (f.fallbackKeys > 0)
        std::fprintf(
            stderr,
            "bench_report: WARNING: %s: %llu cell(s) carry no "
            "provenance block; matching them by the ambiguous "
            "workload|scheme fallback key. Re-emit the sweep with a "
            "current build, or pass --strict to make this fatal.\n",
            path.c_str(),
            static_cast<unsigned long long>(f.fallbackKeys));
    return f;
}

/** Parse @p path as a raw sweep JSON document (for --merge). */
Json
loadRawJson(const std::string &path)
{
    std::ifstream is(path);
    if (!is) {
        std::fprintf(stderr, "bench_report: cannot read '%s'\n",
                     path.c_str());
        std::exit(2);
    }
    std::ostringstream buf;
    buf << is.rdbuf();
    try {
        return Json::parse(buf.str());
    } catch (const std::exception &ex) {
        std::fprintf(stderr, "bench_report: %s: %s\n", path.c_str(),
                     ex.what());
        std::exit(2);
    }
}

/** --merge OUT IN...: recombine shard sweeps into one document. */
int
mergeMain(const std::string &outPath,
          const std::vector<std::string> &inputs)
{
    if (inputs.empty()) {
        std::fprintf(stderr,
                     "bench_report: --merge needs at least one "
                     "shard file\n");
        return 2;
    }
    std::vector<Json> docs;
    docs.reserve(inputs.size());
    for (const std::string &path : inputs)
        docs.push_back(loadRawJson(path));

    std::string error;
    auto merged =
        perspective::harness::mergeSweeps(docs, inputs, error);
    if (!merged) {
        std::fprintf(stderr, "bench_report: merge failed: %s\n",
                     error.c_str());
        return 1;
    }
    std::ofstream os(outPath);
    if (!os) {
        std::fprintf(stderr,
                     "bench_report: cannot open '%s' for writing\n",
                     outPath.c_str());
        return 2;
    }
    merged->write(os, 2);
    os.put('\n');
    if (!os.flush()) {
        std::fprintf(stderr, "bench_report: short write to '%s'\n",
                     outPath.c_str());
        return 2;
    }
    std::printf("merged %zu shard(s), %zu cells -> %s\n",
                inputs.size(),
                merged->at("cells").asArray().size(),
                outPath.c_str());
    return 0;
}

/** Aggregate throughput: total simulated instructions of the
 * successful cells over the sweep's wall-clock seconds, in millions
 * of instructions per second. 0 when the file carries no timing. */
double
aggregateMips(const SweepFile &f)
{
    if (f.wallSeconds <= 0)
        return 0;
    std::uint64_t instructions = 0;
    for (const Cell &c : f.cells)
        if (c.ok)
            instructions += c.instructions;
    return static_cast<double>(instructions) / f.wallSeconds / 1e6;
}

void
summarize(const SweepFile &f)
{
    std::uint64_t failed = 0;
    for (const Cell &c : f.cells)
        failed += c.ok ? 0 : 1;
    std::printf("%s: bench=%s git=%s cells=%zu failed=%llu "
                "wall=%.2fs mips=%.2f\n",
                f.path.c_str(), f.bench.c_str(),
                f.git.empty() ? "?" : f.git.c_str(),
                f.cells.size(),
                static_cast<unsigned long long>(failed),
                f.wallSeconds, aggregateMips(f));
    // Fast-path telemetry (absent from files predating the counters).
    if (f.gateChecks + f.gateElided > 0)
        std::printf("  gate re-evals: %llu checked, %llu elided "
                    "(%.1f%% elided)\n",
                    static_cast<unsigned long long>(f.gateChecks),
                    static_cast<unsigned long long>(f.gateElided),
                    100.0 * static_cast<double>(f.gateElided) /
                        static_cast<double>(f.gateChecks +
                                            f.gateElided));
    if (f.mruLookups > 0)
        std::printf("  dsvmt walk MRU: %llu/%llu hits (%.1f%%)\n",
                    static_cast<unsigned long long>(f.mruHits),
                    static_cast<unsigned long long>(f.mruLookups),
                    100.0 * static_cast<double>(f.mruHits) /
                        static_cast<double>(f.mruLookups));
    if (f.ffUops + f.ffCycles > 0)
        std::printf("  fast-forward: %.1f%% of uops, %.1f%% of "
                    "cycles through the replica\n",
                    f.simInstructions
                        ? 100.0 * static_cast<double>(f.ffUops) /
                              static_cast<double>(f.simInstructions)
                        : 0.0,
                    f.simCycles
                        ? 100.0 * static_cast<double>(f.ffCycles) /
                              static_cast<double>(f.simCycles)
                        : 0.0);
    if (f.sbHits + f.sbMisses > 0)
        std::printf("  superblock cache: %llu/%llu hits (%.1f%%)\n",
                    static_cast<unsigned long long>(f.sbHits),
                    static_cast<unsigned long long>(f.sbHits +
                                                    f.sbMisses),
                    100.0 * static_cast<double>(f.sbHits) /
                        static_cast<double>(f.sbHits + f.sbMisses));
    if (f.gapSamples > 0 || f.staleAllows > 0)
        std::printf("  transient gaps: %llu windows, p50~%.0f "
                    "p99~%.0f cycles (count-weighted); %llu stale "
                    "allows\n",
                    static_cast<unsigned long long>(f.gapSamples),
                    f.gapSamples
                        ? f.gapP50W / static_cast<double>(f.gapSamples)
                        : 0.0,
                    f.gapSamples
                        ? f.gapP99W / static_cast<double>(f.gapSamples)
                        : 0.0,
                    static_cast<unsigned long long>(f.staleAllows));
    if (f.fleet) {
        // The speedup column is measured fleet makespan against the
        // estimated static 1/N sharding of the same cells — the
        // work-stealing win, not a comparison across files.
        char ratio[16] = "-";
        if (f.makespan > 0 && f.staticShardEst > 0)
            std::snprintf(ratio, sizeof ratio, "%.2fx",
                          f.staticShardEst / f.makespan);
        std::printf("  fleet: %llu worker(s), %llu steal(s), %llu "
                    "straggler cell(s) resent; makespan %.2fs vs "
                    "static-shard est %.2fs (%s)\n",
                    static_cast<unsigned long long>(f.fleetWorkers),
                    static_cast<unsigned long long>(f.fleetSteals),
                    static_cast<unsigned long long>(f.fleetResent),
                    f.makespan, f.staticShardEst, ratio);
    }
    if (f.sampledCells > 0)
        std::printf("  sampled: %llu cell(s), %llu detailed "
                    "window(s); CPI 95%% CI rel. error avg %.2f%% "
                    "max %.2f%% (statistical — not bit-comparable)\n",
                    static_cast<unsigned long long>(f.sampledCells),
                    static_cast<unsigned long long>(f.sampledWindows),
                    100.0 * f.relErrSum /
                        static_cast<double>(f.sampledCells),
                    100.0 * f.relErrMax);
    if (f.secretLoads > 0 || f.leakBytes > 0)
        std::printf("  leakage: %llu secret loads (%llu bytes at "
                    "risk), %llu transmissions, %llu bytes "
                    "transmitted\n",
                    static_cast<unsigned long long>(f.secretLoads),
                    static_cast<unsigned long long>(f.bytesAtRisk),
                    static_cast<unsigned long long>(
                        f.leakTransmissions),
                    static_cast<unsigned long long>(f.leakBytes));
    if (f.traceDropped > 0) {
        std::uint64_t worst = 0;
        for (std::uint64_t d : f.traceDroppedByLane)
            worst = std::max(worst, d);
        std::fprintf(stderr,
                     "bench_report: WARNING: %s: event trace dropped "
                     "%llu event(s) (worst lane: %llu) — raise the "
                     "log capacity or narrow the enabled flags\n",
                     f.path.c_str(),
                     static_cast<unsigned long long>(f.traceDropped),
                     static_cast<unsigned long long>(worst));
    }
}

/** Signed delta column: "+12345" / "0". */
std::string
delta(std::uint64_t now, std::uint64_t base)
{
    std::int64_t d = static_cast<std::int64_t>(now) -
                     static_cast<std::int64_t>(base);
    char buf[32];
    std::snprintf(buf, sizeof buf, "%+lld",
                  static_cast<long long>(d));
    return d == 0 ? "0" : buf;
}

unsigned
compare(const SweepFile &now, const SweepFile &base, bool verbose)
{
    const auto &baseByKey = base.byKey();

    unsigned diffs = 0, unmatched = 0;
    std::printf("\n%-14s %-20s %14s %14s %10s %8s %8s\n", "workload",
                "scheme", "d(cycles)", "d(insts)", "d(fences)",
                "mips", "speedup");
    for (const Cell &c : now.cells) {
        auto it = baseByKey.find(c.key);
        if (it == baseByKey.end()) {
            ++unmatched;
            std::printf("%-14s %-20s %s\n", c.workload.c_str(),
                        c.scheme.c_str(),
                        "(no matching baseline cell)");
            continue;
        }
        const Cell &b = *it->second;
        bool same = c.cycles == b.cycles &&
                    c.instructions == b.instructions &&
                    c.fences == b.fences;
        if (!same)
            ++diffs;
        if (same && !verbose)
            continue;
        // Throughput is informational here: wall clock is noisy, so
        // it never counts toward --check (use --perf-baseline for a
        // tolerance-based gate).
        char speedup[16] = "-";
        if (b.mips > 0 && c.mips > 0)
            std::snprintf(speedup, sizeof speedup, "%.2fx",
                          c.mips / b.mips);
        std::printf("%-14s %-20s %14s %14s %10s %8.2f %8s\n",
                    c.workload.c_str(), c.scheme.c_str(),
                    delta(c.cycles, b.cycles).c_str(),
                    delta(c.instructions, b.instructions).c_str(),
                    delta(c.fences, b.fences).c_str(), c.mips,
                    speedup);
    }
    std::printf("\n%u of %zu cells differ from baseline"
                " (%u unmatched)\n",
                diffs, now.cells.size(), unmatched);
    return diffs + unmatched;
}

/**
 * Aggregate-throughput gate: each input must sustain at least
 * @p threshold x the baseline's MIPS. Returns the number of files
 * that fail (missing timing on either side is a failure too — a
 * silent pass would mask a broken perf pipeline).
 */
unsigned
perfCompare(const std::vector<SweepFile> &inputs,
            const SweepFile &base, double threshold)
{
    double baseMips = aggregateMips(base);
    std::printf("\nperf baseline: %s mips=%.2f (threshold %.2fx "
                "=> require >= %.2f)\n",
                base.path.c_str(), baseMips, threshold,
                baseMips * threshold);
    unsigned failures = 0;
    for (const SweepFile &f : inputs) {
        double mips = aggregateMips(f);
        bool ok = baseMips > 0 && mips >= baseMips * threshold;
        if (!ok)
            ++failures;
        std::printf("  %-40s mips=%8.2f  %6.2fx  %s\n",
                    f.path.c_str(), mips,
                    baseMips > 0 ? mips / baseMips : 0.0,
                    ok ? "ok" : "FAIL");
    }
    return failures;
}

/**
 * Per-scheme overhead: geometric mean, over the workloads present,
 * of cycles(workload, scheme) / cycles(workload, "unsafe") within
 * the same file. The figure every results table in the paper is
 * built from, and the quantity the sampled-accuracy gate compares.
 */
std::map<std::string, double>
schemeOverheads(const SweepFile &f)
{
    // scheme -> workload -> cycles; duplicates (the same pair run
    // twice, e.g. simspeed's boot passes) keep the first occurrence.
    std::map<std::string, std::map<std::string, double>> cyc;
    for (const Cell &c : f.cells)
        if (c.ok && c.cycles > 0)
            cyc[c.scheme].emplace(c.workload,
                                  static_cast<double>(c.cycles));
    std::map<std::string, double> out;
    auto unsafeIt = cyc.find("unsafe");
    if (unsafeIt == cyc.end())
        return out;
    for (const auto &[scheme, byWorkload] : cyc) {
        if (scheme == "unsafe")
            continue;
        std::vector<double> ratios;
        for (const auto &[w, cycles] : byWorkload) {
            auto u = unsafeIt->second.find(w);
            if (u != unsafeIt->second.end() && u->second > 0)
                ratios.push_back(cycles / u->second);
        }
        if (!ratios.empty())
            out[scheme] = perspective::harness::geomean(ratios);
    }
    return out;
}

/**
 * Statistical-accuracy gate (--accuracy-baseline): every input's
 * per-scheme mean overhead must sit within @p threshold relative
 * error of the exact baseline's. Cells are matched by
 * (workload, scheme) — sampled and exact runs of the same cell hash
 * differently by design, so the config-hash matching of --baseline
 * cannot pair them. Returns the number of failing schemes across
 * all inputs.
 */
unsigned
accuracyCompare(const std::vector<SweepFile> &inputs,
                const SweepFile &base, double threshold)
{
    std::map<std::string, double> baseOv = schemeOverheads(base);
    std::printf("\naccuracy baseline: %s (threshold: rel. error "
                "<= %.2f%% on per-scheme mean overhead)\n",
                base.path.c_str(), 100.0 * threshold);
    if (baseOv.empty()) {
        std::fprintf(stderr,
                     "bench_report: accuracy baseline has no unsafe "
                     "reference cells — cannot compute overheads\n");
        return 1;
    }
    unsigned failures = 0;
    for (const SweepFile &f : inputs) {
        std::map<std::string, double> ov = schemeOverheads(f);
        // Mean CPI-CI relative error per scheme, from the sampled
        // cells themselves (the estimator's own precision claim,
        // printed beside the measured-against-exact error).
        std::map<std::string, std::pair<double, unsigned>> ci;
        for (const Cell &c : f.cells)
            if (c.ok && c.sampled) {
                ci[c.scheme].first += c.relError;
                ci[c.scheme].second += 1;
            }
        std::printf("  %s:\n", f.path.c_str());
        std::printf("    %-20s %10s %10s %10s %10s  %s\n", "scheme",
                    "base ovh", "this ovh", "rel err", "avg ci95",
                    "verdict");
        for (const auto &[scheme, bo] : baseOv) {
            auto it = ov.find(scheme);
            if (it == ov.end()) {
                std::printf("    %-20s %10.4f %10s %10s %10s  %s\n",
                            scheme.c_str(), bo, "-", "-", "-",
                            "MISSING");
                ++failures;
                continue;
            }
            double rel = bo > 0 ? std::abs(it->second - bo) / bo : 0;
            bool ok = rel <= threshold;
            if (!ok)
                ++failures;
            auto cit = ci.find(scheme);
            char cibuf[16] = "-";
            if (cit != ci.end() && cit->second.second > 0)
                std::snprintf(cibuf, sizeof cibuf, "%9.2f%%",
                              100.0 * cit->second.first /
                                  cit->second.second);
            std::printf("    %-20s %10.4f %10.4f %9.2f%% %10s  %s\n",
                        scheme.c_str(), bo, it->second, 100.0 * rel,
                        cibuf, ok ? "ok" : "FAIL");
        }
    }
    return failures;
}

/** Split a comma-separated scheme list ("" => match everything). */
std::vector<std::string>
splitSchemes(const std::string &list)
{
    std::vector<std::string> out;
    std::string cur;
    for (char ch : list) {
        if (ch == ',') {
            if (!cur.empty())
                out.push_back(cur);
            cur.clear();
        } else {
            cur.push_back(ch);
        }
    }
    if (!cur.empty())
        out.push_back(cur);
    return out;
}

/**
 * Hard leak gate: no successful cell (of the filtered schemes) may
 * report a single transmitted byte. Returns the number of offending
 * cells across all inputs.
 */
unsigned
leakGate(const std::vector<SweepFile> &inputs,
         const std::vector<std::string> &schemes)
{
    unsigned offenders = 0;
    std::uint64_t matched = 0;
    for (const SweepFile &f : inputs) {
        for (const Cell &c : f.cells) {
            if (!c.ok)
                continue;
            if (!schemes.empty() &&
                std::find(schemes.begin(), schemes.end(),
                          c.scheme) == schemes.end())
                continue;
            ++matched;
            if (c.leakBytes > 0) {
                ++offenders;
                std::fprintf(
                    stderr,
                    "bench_report: leak gate: %s: %s/%s "
                    "transmitted %llu byte(s) (%llu transmissions, "
                    "%llu secret loads)\n",
                    f.path.c_str(), c.workload.c_str(),
                    c.scheme.c_str(),
                    static_cast<unsigned long long>(c.leakBytes),
                    static_cast<unsigned long long>(
                        c.leakTransmissions),
                    static_cast<unsigned long long>(c.secretLoads));
            }
        }
    }
    std::printf("\nleak gate: %llu cell(s) checked, %u leaking\n",
                static_cast<unsigned long long>(matched), offenders);
    return offenders;
}

void
usage(int code)
{
    std::printf(
        "usage: bench_report FILE.json [FILE2.json ...]\n"
        "           [--baseline BASE.json] [--check] [--strict]\n"
        "           [--verbose] [--perf-baseline BASE.json]\n"
        "           [--perf-threshold R]\n"
        "       bench_report --merge OUT.json SHARD.json "
        "[SHARD2.json ...]\n"
        "  --baseline F       per-cell delta of every input against"
        " F\n"
        "  --check            exit 1 if any cell differs from the\n"
        "                     baseline (regression gate)\n"
        "  --strict           exit 1 if any input matches cells by\n"
        "                     the provenance-less workload|scheme\n"
        "                     fallback key\n"
        "  --verbose          list identical cells too, and print\n"
        "                     per-file parse timing\n"
        "  --perf-baseline F  exit 1 if any input's aggregate MIPS\n"
        "                     falls below R x F's (timing gate)\n"
        "  --perf-threshold R minimum allowed MIPS ratio "
        "(default 0.80)\n"
        "  --accuracy-baseline F\n"
        "                     gate sampled sweeps: exit 1 if any\n"
        "                     input's per-scheme mean overhead\n"
        "                     (geomean cycles vs unsafe, matched by\n"
        "                     workload+scheme) deviates from exact\n"
        "                     baseline F by more than the threshold\n"
        "  --accuracy-threshold R\n"
        "                     max allowed relative error "
        "(default 0.02)\n"
        "  --leak-gate[=S,..] exit 1 if any successful cell (of the\n"
        "                     listed schemes; all when omitted)\n"
        "                     reports transmitted leakage bytes\n"
        "  --expect-leak      exit 1 if NO input reports transmitted\n"
        "                     leakage bytes (gates the gate: a racy\n"
        "                     config must show a nonzero signal)\n"
        "  --merge OUT        recombine --shard K/N sweep JSONs "
        "into\n"
        "                     one complete document (refuses\n"
        "                     duplicate, overlapping, or missing "
        "shards)\n");
    std::exit(code);
}

} // namespace

int
main(int argc, char **argv)
{
    std::vector<std::string> inputs;
    std::string baselinePath, perfBaselinePath, mergePath;
    std::string accuracyBaselinePath;
    double accuracyThreshold = 0.02;
    double perfThreshold = 0.80;
    bool check = false, verbose = false, strict = false;
    bool leakGateOn = false, expectLeak = false;
    std::vector<std::string> leakSchemes;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--merge") {
            if (i + 1 >= argc)
                usage(2);
            mergePath = argv[++i];
        } else if (arg.rfind("--merge=", 0) == 0) {
            mergePath = arg.substr(8);
        } else if (arg == "--baseline") {
            if (i + 1 >= argc)
                usage(2);
            baselinePath = argv[++i];
        } else if (arg.rfind("--baseline=", 0) == 0) {
            baselinePath = arg.substr(11);
        } else if (arg == "--perf-baseline") {
            if (i + 1 >= argc)
                usage(2);
            perfBaselinePath = argv[++i];
        } else if (arg.rfind("--perf-baseline=", 0) == 0) {
            perfBaselinePath = arg.substr(16);
        } else if (arg == "--perf-threshold") {
            if (i + 1 >= argc)
                usage(2);
            perfThreshold = std::atof(argv[++i]);
        } else if (arg.rfind("--perf-threshold=", 0) == 0) {
            perfThreshold = std::atof(arg.substr(17).c_str());
        } else if (arg == "--accuracy-baseline") {
            if (i + 1 >= argc)
                usage(2);
            accuracyBaselinePath = argv[++i];
        } else if (arg.rfind("--accuracy-baseline=", 0) == 0) {
            accuracyBaselinePath = arg.substr(20);
        } else if (arg == "--accuracy-threshold") {
            if (i + 1 >= argc)
                usage(2);
            accuracyThreshold = std::atof(argv[++i]);
        } else if (arg.rfind("--accuracy-threshold=", 0) == 0) {
            accuracyThreshold = std::atof(arg.substr(21).c_str());
        } else if (arg == "--leak-gate") {
            leakGateOn = true;
        } else if (arg.rfind("--leak-gate=", 0) == 0) {
            leakGateOn = true;
            leakSchemes = splitSchemes(arg.substr(12));
        } else if (arg == "--expect-leak") {
            expectLeak = true;
        } else if (arg == "--check") {
            check = true;
        } else if (arg == "--strict") {
            strict = true;
        } else if (arg == "--verbose") {
            verbose = true;
        } else if (arg == "--help" || arg == "-h") {
            usage(0);
        } else if (!arg.empty() && arg[0] == '-') {
            std::fprintf(stderr,
                         "bench_report: unknown argument '%s'\n",
                         arg.c_str());
            usage(2);
        } else {
            inputs.push_back(arg);
        }
    }
    if (!mergePath.empty()) {
        // Merge mode is exclusive: the output is a sweep document,
        // not a report.
        if (check || strict || verbose || !baselinePath.empty() ||
            !perfBaselinePath.empty() ||
            !accuracyBaselinePath.empty()) {
            std::fprintf(stderr,
                         "bench_report: --merge cannot be combined "
                         "with report flags\n");
            return 2;
        }
        return mergeMain(mergePath, inputs);
    }
    if (inputs.empty())
        usage(2);
    if (check && baselinePath.empty()) {
        std::fprintf(stderr,
                     "bench_report: --check needs --baseline\n");
        return 2;
    }

    if (perfThreshold <= 0) {
        std::fprintf(stderr,
                     "bench_report: --perf-threshold must be > 0\n");
        return 2;
    }
    if (accuracyThreshold <= 0) {
        std::fprintf(
            stderr,
            "bench_report: --accuracy-threshold must be > 0\n");
        return 2;
    }

    // --check only compares the deterministic counters, so the bulk
    // histogram/timeseries payloads need not be materialized.
    bool skipHeavy = check;
    std::vector<SweepFile> files;
    files.reserve(inputs.size());
    for (const std::string &path : inputs)
        files.push_back(loadSweep(path, skipHeavy, verbose));

    unsigned total_diffs = 0;
    std::uint64_t fallbacks = 0;
    for (const SweepFile &f : files) {
        summarize(f);
        fallbacks += f.fallbackKeys;
    }

    if (!baselinePath.empty()) {
        SweepFile base = loadSweep(baselinePath, skipHeavy, verbose);
        fallbacks += base.fallbackKeys;
        std::printf("\nbaseline: ");
        summarize(base);
        if (check) {
            // Sampled cells are statistical estimates: two correct
            // runs legitimately differ, so a bit-exact gate over
            // them can only mislead (spurious green on lucky seeds,
            // spurious red otherwise). Refuse outright rather than
            // diff; --accuracy-baseline is the sanctioned gate.
            std::uint64_t sampled = base.sampledCells;
            for (const SweepFile &f : files)
                sampled += f.sampledCells;
            if (sampled > 0) {
                std::fprintf(
                    stderr,
                    "bench_report: FAIL — --check compares cells "
                    "bit-for-bit, but %llu cell(s) across the inputs "
                    "are sampled (statistical). Use "
                    "--accuracy-baseline with an exact sweep "
                    "instead.\n",
                    static_cast<unsigned long long>(sampled));
                return 1;
            }
        }
        for (const SweepFile &f : files)
            total_diffs += compare(f, base, verbose);
    }

    if (strict && fallbacks > 0) {
        std::fprintf(stderr,
                     "bench_report: FAIL — %llu cell(s) matched by "
                     "the provenance-less fallback key under "
                     "--strict\n",
                     static_cast<unsigned long long>(fallbacks));
        return 1;
    }

    unsigned perf_failures = 0;
    if (!perfBaselinePath.empty())
        perf_failures = perfCompare(files, loadSweep(perfBaselinePath),
                                    perfThreshold);

    unsigned accuracy_failures = 0;
    if (!accuracyBaselinePath.empty())
        accuracy_failures =
            accuracyCompare(files, loadSweep(accuracyBaselinePath),
                            accuracyThreshold);

    unsigned leak_failures = 0;
    if (leakGateOn)
        leak_failures = leakGate(files, leakSchemes);
    if (expectLeak) {
        std::uint64_t total = 0;
        for (const SweepFile &f : files)
            total += f.leakBytes;
        if (total == 0) {
            std::fprintf(stderr,
                         "bench_report: FAIL — --expect-leak: no "
                         "input reports any transmitted leakage "
                         "bytes (the leak instrumentation may be "
                         "dead)\n");
            return 1;
        }
        std::printf("expect-leak: %llu byte(s) transmitted across "
                    "inputs — signal present\n",
                    static_cast<unsigned long long>(total));
    }
    if (leak_failures > 0) {
        std::fprintf(stderr,
                     "bench_report: FAIL — %u cell(s) leaked "
                     "transmitted bytes\n",
                     leak_failures);
        return 1;
    }

    if (check && total_diffs > 0) {
        std::fprintf(stderr,
                     "bench_report: FAIL — %u differing cell(s)\n",
                     total_diffs);
        return 1;
    }
    if (perf_failures > 0) {
        std::fprintf(stderr,
                     "bench_report: FAIL — %u file(s) below the "
                     "performance threshold\n",
                     perf_failures);
        return 1;
    }
    if (accuracy_failures > 0) {
        std::fprintf(stderr,
                     "bench_report: FAIL — %u scheme(s) outside the "
                     "sampled-accuracy threshold\n",
                     accuracy_failures);
        return 1;
    }
    return 0;
}
