/**
 * @file
 * Figure 9.3: datacenter application throughput (requests/second)
 * normalized to UNSAFE, including the hardware-scheme and spot-
 * mitigation comparison points of Section 9.1. RPS is computed from
 * measured cycles at the simulated 2 GHz clock.
 */

#include <cstdio>
#include <map>
#include <vector>

#include "common.hh"
#include "workloads/experiment.hh"

using namespace perspective;
using namespace perspective::bench;
using namespace perspective::workloads;

namespace
{

constexpr double kClockHz = 2.0e9;

double
rpsOf(const WorkloadProfile &w, Scheme s, double *kfrac = nullptr)
{
    Experiment e(w, s);
    auto r = e.run(kIterations, kWarmup);
    if (kfrac)
        *kfrac = r.kernelFraction();
    double seconds = r.cycles / kClockHz;
    return kIterations / seconds;
}

} // namespace

int
main()
{
    banner("Figure 9.3: Requests per second normalized to UNSAFE");

    std::vector<Scheme> schemes = {
        Scheme::Fence,           Scheme::Dom,
        Scheme::Stt,             Scheme::InvisiSpec,
        Scheme::Spot,            Scheme::PerspectiveStatic,
        Scheme::Perspective,     Scheme::PerspectivePlusPlus};

    std::printf("%-11s %10s %6s", "app", "RPS", "OS%");
    for (Scheme s : schemes)
        std::printf("%12s", schemeName(s));
    std::printf("\n");
    rule(28 + 12 * schemes.size());

    std::map<Scheme, double> sums;
    auto apps = datacenterSuite();
    for (const auto &w : apps) {
        double kfrac = 0;
        double unsafe_rps = rpsOf(w, Scheme::Unsafe, &kfrac);
        std::printf("%-11s %10.0f %5.0f%%", w.name.c_str(),
                    unsafe_rps, 100.0 * kfrac);
        for (Scheme s : schemes) {
            double norm = rpsOf(w, s) / unsafe_rps;
            sums[s] += norm;
            std::printf("%12.3f", norm);
        }
        std::printf("\n");
    }

    rule(28 + 12 * schemes.size());
    std::printf("%-28s", "average normalized RPS");
    for (Scheme s : schemes)
        std::printf("%12.3f", sums[s] / apps.size());
    std::printf("\n");

    std::printf("\n[paper: FENCE 0.943, DOM 0.983, STT 0.996, spot "
                "0.95, Perspective flavors 0.987-0.988;\n"
                " OS-time fractions 50/65/65/53%% for "
                "httpd/nginx/memcached/redis]\n");
    return 0;
}
