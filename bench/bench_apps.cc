/**
 * @file
 * Figure 9.3: datacenter application throughput (requests/second)
 * normalized to UNSAFE, including the hardware-scheme and spot-
 * mitigation comparison points of Section 9.1. RPS is computed from
 * measured cycles at the simulated 2 GHz clock.
 *
 * The (app x scheme) grid runs through the sweep runner: `--jobs N`
 * parallelizes the cells, `--json PATH` emits the raw results.
 */

#include <cstdio>
#include <map>
#include <vector>

#include "common.hh"
#include "harness/sweep.hh"
#include "workloads/experiment.hh"

using namespace perspective;
using namespace perspective::bench;
using namespace perspective::harness;
using namespace perspective::workloads;

namespace
{

constexpr double kClockHz = 2.0e9;

double
rpsOf(const CellResult &r)
{
    double seconds = r.result.cycles / kClockHz;
    return kIterations / seconds;
}

} // namespace

int
main(int argc, char **argv)
{
    SweepRunner sweep(parseSweepArgs("bench_apps", argc, argv));

    banner("Figure 9.3: Requests per second normalized to UNSAFE");

    std::vector<Scheme> schemes = {
        Scheme::Fence,           Scheme::Dom,
        Scheme::Stt,             Scheme::InvisiSpec,
        Scheme::Spot,            Scheme::PerspectiveStatic,
        Scheme::Perspective,     Scheme::PerspectivePlusPlus};

    auto apps = datacenterSuite();
    std::vector<SweepCell> cells;
    for (const auto &w : apps) {
        for (std::size_t k = 0; k <= schemes.size(); ++k) {
            SweepCell c;
            c.profile = w;
            c.scheme = k == 0 ? Scheme::Unsafe : schemes[k - 1];
            c.iterations = kIterations;
            c.warmup = kWarmup;
            cells.push_back(std::move(c));
        }
    }
    auto results = sweep.run(cells);

    if (renderTables(sweep)) {
        std::printf("%-11s %10s %6s", "app", "RPS", "OS%");
        for (Scheme s : schemes)
            std::printf("%12s", schemeName(s));
        std::printf("\n");
        rule(28 + 12 * schemes.size());

        const std::size_t stride = 1 + schemes.size();
        std::map<Scheme, std::vector<double>> norms;
        for (std::size_t row = 0; row < apps.size(); ++row) {
            const CellResult &base = results[row * stride];
            double unsafe_rps = rpsOf(base);
            std::printf("%-11s %10.0f %5.0f%%",
                        base.workload.c_str(), unsafe_rps,
                        100.0 * base.result.kernelFraction());
            for (std::size_t k = 0; k < schemes.size(); ++k) {
                const CellResult &r = results[row * stride + 1 + k];
                double norm = rpsOf(r) / unsafe_rps;
                norms[schemes[k]].push_back(norm);
                std::printf("%12.3f", norm);
            }
            std::printf("\n");
        }

        rule(28 + 12 * schemes.size());
        std::printf("%-28s", "geomean normalized RPS");
        for (Scheme s : schemes)
            std::printf("%12.3f", geomean(norms[s]));
        std::printf("\n");

        std::printf("\n[paper: FENCE 0.943, DOM 0.983, STT 0.996, "
                    "spot 0.95, Perspective flavors 0.987-0.988;\n"
                    " OS-time fractions 50/65/65/53%% for "
                    "httpd/nginx/memcached/redis]\n");
    }
    return sweep.emitOutputs() ? 0 : 1;
}
