/**
 * @file
 * Chapter 8 security evaluation: prints the Table 4.1 CVE taxonomy
 * and runs every PoC attack under every scheme (Sections 8.1/8.2),
 * demonstrating that DSVs eliminate active attacks and ISVs close the
 * passive surface while spot mitigations leave gaps.
 */

#include <cstdio>
#include <string>

#include "attacks/poc.hh"
#include "common.hh"

using namespace perspective;
using namespace perspective::attacks;
using namespace perspective::bench;
using namespace perspective::workloads;

int
main()
{
    banner("Table 4.1: Speculative-execution vulnerabilities "
           "targeting the kernel");
    std::printf("%-3s %-42s %-9s %-18s\n", "#", "Primitive /"
                " description", "Gap", "PoC");
    rule(76);
    for (const auto &row : cveCatalog()) {
        std::printf("%-3u %-42.42s %-9.9s %-18.18s\n", row.row,
                    std::string(row.description).c_str(),
                    std::string(gapName(row.gap)).c_str(),
                    std::string(pocName(row.poc)).c_str());
        std::printf("    origin: %-20.20s CVEs: %.44s\n",
                    std::string(row.origin).c_str(),
                    std::string(row.cves).c_str());
    }

    banner("Sections 8.1/8.2: PoC attacks vs defense schemes");
    std::vector<Scheme> schemes = {Scheme::Unsafe, Scheme::Spot,
                                   Scheme::SpecCfi,
                                   Scheme::InvisiSpec, Scheme::Fence,
                                   Scheme::Dom, Scheme::Stt,
                                   Scheme::Perspective,
                                   Scheme::PerspectivePlusPlus};
    std::printf("%-18s", "attack");
    for (Scheme s : schemes)
        std::printf("%15s", schemeName(s));
    std::printf("\n");
    rule(18 + 15 * schemes.size());

    for (PocKind k : allPocs()) {
        std::printf("%-18s", std::string(pocName(k)).c_str());
        for (Scheme s : schemes) {
            Experiment e(pocProfile(), s);
            auto r = runPoc(k, e);
            std::printf("%15s", r.leaked ? "LEAKED" : "blocked");
        }
        std::printf("\n");
    }

    std::printf("\n[paper: unsafe leaks everything; KPTI+retpoline "
                "miss v1 and Retbleed;\n SpecCFI/CET-style shadow "
                "stacks stop Retbleed but coarse CFI labels leave v1 "
                "and v2 open;\n Perspective blocks all active "
                "attacks via DSVs and all passive attacks via "
                "ISVs]\n");
    return 0;
}
