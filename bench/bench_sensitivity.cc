/**
 * @file
 * Section 9.2 sensitivity analyses:
 *  - cost of blocking unknown allocations (toggle blockUnknown);
 *  - ISV/DSV cache hit rates;
 *  - DSVMT walk depths and memory footprint.
 *
 * The first two sections run their grids through the sweep runner
 * (`--jobs N`, `--json PATH`); the DSVMT probe needs live access to
 * the policy's tree and stays inline.
 */

#include <cstdio>
#include <vector>

#include "common.hh"
#include "core/perspective.hh"
#include "harness/sweep.hh"
#include "workloads/experiment.hh"

using namespace perspective;
using namespace perspective::bench;
using namespace perspective::harness;
using namespace perspective::workloads;

namespace
{

/** Cell body: Perspective with blockUnknown toggled. */
SweepCell
unknownCell(const WorkloadProfile &w, bool block_unknown)
{
    SweepCell c;
    c.profile = w;
    c.scheme = Scheme::Perspective;
    c.iterations = kIterations;
    c.warmup = kWarmup;
    c.tags = {{"section", "unknown-allocations"},
              {"block_unknown", block_unknown ? "true" : "false"}};
    c.body = [block_unknown](const SweepCell &cell) {
        Experiment e(cell.profile, Scheme::Perspective, cell.seed);
        core::PerspectiveConfig cfg;
        cfg.blockUnknown = block_unknown;
        core::PerspectivePolicy pol(e.kernelState().ownership(), cfg,
                                    "sensitivity");
        const auto &t = e.kernelState().task(e.mainPid());
        pol.registerContext(t.asid, t.domain, e.isvView());
        e.pipeline().setPolicy(&pol);
        return e.run(cell.iterations, cell.warmup);
    };
    return c;
}

} // namespace

int
main(int argc, char **argv)
{
    SweepRunner sweep(parseSweepArgs("bench_sensitivity", argc,
                                     argv));

    // Grid: per LEBench workload, [unsafe, block-unknown,
    // allow-unknown]; then the four datacenter apps under
    // Perspective for hit rates.
    auto suite = lebenchSuite();
    std::vector<SweepCell> cells;
    for (const auto &w : suite) {
        SweepCell base;
        base.profile = w;
        base.scheme = Scheme::Unsafe;
        base.iterations = kIterations;
        base.warmup = kWarmup;
        base.tags = {{"section", "unknown-allocations"},
                     {"role", "baseline"}};
        cells.push_back(std::move(base));
        cells.push_back(unknownCell(w, true));
        cells.push_back(unknownCell(w, false));
    }
    auto apps = datacenterSuite();
    std::size_t hit_base = cells.size();
    for (const auto &w : apps) {
        SweepCell c;
        c.profile = w;
        c.scheme = Scheme::Perspective;
        c.iterations = kIterations;
        c.warmup = kWarmup;
        c.tags = {{"section", "hit-rates"}};
        cells.push_back(std::move(c));
    }
    auto results = sweep.run(cells);

    if (!renderTables(sweep))
        return sweep.emitOutputs() ? 0 : 1;

    banner("Section 9.2: Unknown allocations");
    std::printf("%-12s %-14s %-14s %-10s\n", "workload",
                "block-unknown", "allow-unknown", "delta");
    rule(54);
    double overhead_sum = 0;
    unsigned n = 0;
    for (std::size_t row = 0; row < suite.size(); ++row) {
        const CellResult &base = results[row * 3];
        double unsafe_cycles =
            static_cast<double>(base.result.cycles);
        double with_block =
            results[row * 3 + 1].result.cycles / unsafe_cycles;
        double without =
            results[row * 3 + 2].result.cycles / unsafe_cycles;
        overhead_sum += with_block - without;
        ++n;
        std::printf("%-12s %12.3f %14.3f %9.1f%%\n",
                    base.workload.c_str(), with_block, without,
                    100.0 * (with_block - without));
    }
    std::printf("average share of overhead from unknown allocations:"
                " %.1f%% of execution\n", 100.0 * overhead_sum / n);
    std::printf("[paper: unknown allocations account for ~1.5%% of "
                "Perspective's LEBench overhead]\n");

    banner("Section 9.2: Hardware structure hit rates");
    std::printf("%-12s %-10s %-10s\n", "workload", "ISV cache",
                "DSV cache");
    rule(34);
    for (std::size_t row = 0; row < apps.size(); ++row) {
        const CellResult &r = results[hit_base + row];
        std::printf("%-12s %8.1f%% %9.1f%%\n", r.workload.c_str(),
                    100.0 * r.result.isvCacheHitRate,
                    100.0 * r.result.dsvCacheHitRate);
    }
    std::printf("[paper: both caches ~99%% hit rate]\n");

    banner("Section 9.2: DSVMT characteristics");
    {
        Experiment e(httpdProfile(), Scheme::Perspective);
        e.run(5, 1);
        auto *pol = e.perspectivePolicy();
        const auto &t = e.kernelState().task(e.mainPid());
        const auto &tree = pol->dsvmtOf(t.domain);
        std::printf("httpd DSVMT: ~%zu bytes resident, walk depth %u "
                    "for a context page\n",
                    tree.memoryBytes(),
                    tree.walkLevels(t.ctxPfn));
    }
    return sweep.emitOutputs() ? 0 : 1;
}
