/**
 * @file
 * Section 9.2 sensitivity analyses:
 *  - cost of blocking unknown allocations (toggle blockUnknown);
 *  - ISV/DSV cache hit rates;
 *  - DSVMT walk depths and memory footprint.
 */

#include <cstdio>

#include "common.hh"
#include "core/perspective.hh"
#include "workloads/experiment.hh"

using namespace perspective;
using namespace perspective::bench;
using namespace perspective::workloads;

namespace
{

/** Run a perspective experiment with a custom config. */
sim::Cycle
runWithConfig(const WorkloadProfile &w, bool block_unknown)
{
    Experiment e(w, Scheme::Perspective);
    core::PerspectiveConfig cfg;
    cfg.blockUnknown = block_unknown;
    core::PerspectivePolicy pol(e.kernelState().ownership(), cfg,
                                "sensitivity");
    const auto &t = e.kernelState().task(e.mainPid());
    pol.registerContext(t.asid, t.domain, e.isvView());
    e.pipeline().setPolicy(&pol);
    return e.run(kIterations, kWarmup).cycles;
}

} // namespace

int
main()
{
    banner("Section 9.2: Unknown allocations");
    std::printf("%-12s %-14s %-14s %-10s\n", "workload",
                "block-unknown", "allow-unknown", "delta");
    rule(54);
    double overhead_sum = 0;
    unsigned n = 0;
    for (const auto &w : lebenchSuite()) {
        Experiment base(w, Scheme::Unsafe);
        double unsafe_cycles = static_cast<double>(
            base.run(kIterations, kWarmup).cycles);
        double with_block = runWithConfig(w, true) / unsafe_cycles;
        double without = runWithConfig(w, false) / unsafe_cycles;
        overhead_sum += with_block - without;
        ++n;
        std::printf("%-12s %12.3f %14.3f %9.1f%%\n", w.name.c_str(),
                    with_block, without,
                    100.0 * (with_block - without));
    }
    std::printf("average share of overhead from unknown allocations:"
                " %.1f%% of execution\n", 100.0 * overhead_sum / n);
    std::printf("[paper: unknown allocations account for ~1.5%% of "
                "Perspective's LEBench overhead]\n");

    banner("Section 9.2: Hardware structure hit rates");
    std::printf("%-12s %-10s %-10s\n", "workload", "ISV cache",
                "DSV cache");
    rule(34);
    for (const auto &w : datacenterSuite()) {
        Experiment e(w, Scheme::Perspective);
        auto r = e.run(kIterations, kWarmup);
        std::printf("%-12s %8.1f%% %9.1f%%\n", w.name.c_str(),
                    100.0 * r.isvCacheHitRate,
                    100.0 * r.dsvCacheHitRate);
    }
    std::printf("[paper: both caches ~99%% hit rate]\n");

    banner("Section 9.2: DSVMT characteristics");
    {
        Experiment e(httpdProfile(), Scheme::Perspective);
        e.run(5, 1);
        auto *pol = e.perspectivePolicy();
        const auto &t = e.kernelState().task(e.mainPid());
        const auto &tree = pol->dsvmtOf(t.domain);
        std::printf("httpd DSVMT: ~%zu bytes resident, walk depth %u "
                    "for a context page\n",
                    tree.memoryBytes(),
                    tree.walkLevels(t.ctxPfn));
    }
    return 0;
}
