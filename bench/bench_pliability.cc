/**
 * @file
 * Runtime pliability sweep: the three dynamic-update scenarios
 * (DSV revocation mid-flight, module load with incremental ISV
 * recomputation, admin fleet flip) driven end-to-end with real PoC
 * attacks racing each update window, plus a revocation-budget sweep
 * tracing the leak-probability-vs-shootdown-budget curve.
 *
 * Each cell emits the first-class update metrics — the
 * "update_latency" and "transient_gap_cycles" histograms plus the
 * "perspective.revocation.stale_allows" counter — alongside the
 * scenario outcome (which attack phases leaked) and the transient-
 * leakage ledger roll-up (secret loads, bytes transmitted, window
 * attribution; DESIGN §5.6). The security contract each scenario
 * must satisfy:
 *
 *  - revocation: revoked data is unreachable once the gap closes,
 *    and a zero budget (synchronous shootdown) transmits nothing;
 *  - module load: the pre-update gap is on the safe side, and the
 *    ISV++ audit re-closes the surface a plain extension opens;
 *  - fleet flip: the lax-setting leak dies once contexts sync.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "attacks/poc.hh"
#include "attacks/races.hh"
#include "common.hh"
#include "harness/sweep.hh"
#include "workloads/experiment.hh"

using namespace perspective;
using namespace perspective::bench;
using namespace perspective::harness;
using namespace perspective::workloads;

namespace
{

using ScenarioFn = attacks::RaceResult (*)(Experiment &);

/** Shootdown budgets swept for the leak-vs-budget curve. */
constexpr sim::Cycle kBudgets[] = {0,       1'000,     10'000,
                                   100'000, 1'000'000, 50'000'000};

void
harvestRace(RunResult &r, Experiment &e,
            const attacks::RaceResult &race)
{
    r.cycles = e.pipeline().now();
    r.stats = e.pipeline().stats();
    r.stats.inc("race.leaked_before_update", race.leakedBeforeUpdate);
    r.stats.inc("race.leaked_in_window", race.leakedInWindow);
    r.stats.inc("race.leaked_after_update", race.leakedAfterUpdate);
    r.stats.inc("race.leaked_after_audit", race.leakedAfterAudit);
    r.stats.inc("race.update_latency_cycles", race.updateLatency);
    r.stats.inc("race.stale_allows", race.staleAllows);
    r.leakage = e.pipeline().leakLedger().summary();
    for (auto &g : r.leakage.topGadgets) {
        if (g.func != sim::kNoFunc)
            g.funcName = e.pipeline().program().func(g.func).name;
        if (g.entryFunc != sim::kNoFunc)
            g.entryName =
                e.pipeline().program().func(g.entryFunc).name;
    }
}

SweepCell
scenarioCell(const char *name, ScenarioFn fn)
{
    SweepCell c;
    c.profile = attacks::pocProfile();
    c.scheme = Scheme::Perspective;
    c.iterations = 1;
    c.warmup = 0;
    c.tags = {{"pliability", name}};
    c.body = [fn](const SweepCell &cell) {
        Experiment e(cell.profile, Scheme::Perspective, cell.seed);
        attacks::RaceResult race = fn(e);
        RunResult r;
        harvestRace(r, e, race);
        return r;
    };
    return c;
}

SweepCell
budgetCell(sim::Cycle budget)
{
    SweepCell c;
    c.profile = attacks::pocProfile();
    c.scheme = Scheme::Perspective;
    c.iterations = 1;
    c.warmup = 0;
    // The budget tag keeps every curve cell's config hash distinct
    // (custom-body cells alias without distinguishing tags).
    c.tags = {{"pliability", "revocation-curve"},
              {"budget", std::to_string(budget)}};
    c.body = [budget](const SweepCell &cell) {
        Experiment e(cell.profile, Scheme::Perspective, cell.seed);
        attacks::RaceResult race = attacks::raceRevocation(e, budget);
        RunResult r;
        harvestRace(r, e, race);
        r.stats.inc("race.budget_cycles", budget);
        return r;
    };
    return c;
}

} // namespace

int
main(int argc, char **argv)
{
    SweepOptions opts =
        parseSweepArgs("bench_pliability", argc, argv);
    SweepRunner sweep(opts);

    std::vector<SweepCell> cells = {
        scenarioCell("revocation", attacks::raceRevocation),
        scenarioCell("module-load", attacks::raceModuleLoad),
        scenarioCell("fleet-flip", attacks::raceFleetFlip),
    };
    const std::size_t nScenarios = cells.size();
    for (sim::Cycle b : kBudgets)
        cells.push_back(budgetCell(b));

    auto results = sweep.run(cells);

    if (renderTables(sweep)) {
        banner("Dynamic-update races (Perspective)");
        std::printf("%-12s %8s %8s %8s %8s %12s %8s\n", "scenario",
                    "before", "window", "after", "audit",
                    "upd-cycles", "stale");
        rule(72);
        for (std::size_t i = 0; i < nScenarios; ++i) {
            const auto &res = results[i];
            if (!res.ok) {
                std::printf("%-12s FAILED: %s\n",
                            res.tags.at("pliability").c_str(),
                            res.error.c_str());
                continue;
            }
            const auto &st = res.result.stats;
            std::printf(
                "%-12s %8llu %8llu %8llu %8llu %12llu %8llu\n",
                res.tags.at("pliability").c_str(),
                (unsigned long long)st.get(
                    "race.leaked_before_update"),
                (unsigned long long)st.get("race.leaked_in_window"),
                (unsigned long long)st.get(
                    "race.leaked_after_update"),
                (unsigned long long)st.get("race.leaked_after_audit"),
                (unsigned long long)st.get(
                    "race.update_latency_cycles"),
                (unsigned long long)st.get("race.stale_allows"));
        }

        banner("Leak probability vs revocation budget");
        std::printf("%12s %8s %8s %10s %8s %8s\n", "budget", "window",
                    "stale", "secret-lds", "tx", "tx-bytes");
        rule(60);
        for (std::size_t i = nScenarios; i < results.size(); ++i) {
            const auto &res = results[i];
            if (!res.ok) {
                std::printf("%12s FAILED: %s\n",
                            res.tags.at("budget").c_str(),
                            res.error.c_str());
                continue;
            }
            const auto &st = res.result.stats;
            const auto &lk = res.result.leakage;
            std::printf("%12s %8llu %8llu %10llu %8llu %8llu\n",
                        res.tags.at("budget").c_str(),
                        (unsigned long long)st.get(
                            "race.leaked_in_window"),
                        (unsigned long long)st.get(
                            "race.stale_allows"),
                        (unsigned long long)lk.secretLoads,
                        (unsigned long long)lk.transmissions,
                        (unsigned long long)lk.bytesTransmitted);
        }
    }

    bool ok = sweep.emitOutputs();
    for (const auto &res : results)
        ok = ok && res.ok;
    return ok ? 0 : 1;
}
