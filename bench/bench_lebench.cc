/**
 * @file
 * Figure 9.2: LEBench normalized latency under FENCE and the three
 * Perspective flavors, normalized to UNSAFE; plus the Section 9.1
 * comparisons against DOM, STT, and deployed spot mitigations
 * (KPTI + retpoline).
 *
 * The whole (workload x scheme) grid runs through the sweep runner:
 * `--jobs N` parallelizes the cells, `--json PATH` emits the raw
 * per-cell results.
 */

#include <cstdio>
#include <map>
#include <vector>

#include "common.hh"
#include "harness/sweep.hh"
#include "workloads/experiment.hh"

using namespace perspective;
using namespace perspective::bench;
using namespace perspective::harness;
using namespace perspective::workloads;

int
main(int argc, char **argv)
{
    SweepRunner sweep(parseSweepArgs("bench_lebench", argc, argv));

    banner("Figure 9.2: LEBench normalized latency (lower is better,"
           " 1.00 = UNSAFE)");

    std::vector<Scheme> schemes = {
        Scheme::Fence,           Scheme::Dom,
        Scheme::Stt,             Scheme::InvisiSpec,
        Scheme::Spot,            Scheme::PerspectiveStatic,
        Scheme::Perspective,     Scheme::PerspectivePlusPlus};

    // Grid: for every workload, the UNSAFE baseline followed by each
    // scheme, in row-major order.
    auto suite = lebenchSuite();
    std::vector<SweepCell> cells;
    for (const auto &w : suite) {
        for (std::size_t k = 0; k <= schemes.size(); ++k) {
            SweepCell c;
            c.profile = w;
            c.scheme = k == 0 ? Scheme::Unsafe : schemes[k - 1];
            c.iterations = kIterations;
            c.warmup = kWarmup;
            cells.push_back(std::move(c));
        }
    }
    auto results = sweep.run(cells);

    if (renderTables(sweep)) {
        std::printf("%-14s", "benchmark");
        for (Scheme s : schemes)
            std::printf("%12s", schemeName(s));
        std::printf("\n");
        rule(14 + 12 * schemes.size());

        const std::size_t stride = 1 + schemes.size();
        std::map<Scheme, std::vector<double>> norms;
        for (std::size_t row = 0; row < suite.size(); ++row) {
            const CellResult &base = results[row * stride];
            double unsafe_cycles =
                static_cast<double>(base.result.cycles);
            std::printf("%-14s", base.workload.c_str());
            for (std::size_t k = 0; k < schemes.size(); ++k) {
                const CellResult &r = results[row * stride + 1 + k];
                double norm = r.result.cycles / unsafe_cycles;
                norms[schemes[k]].push_back(norm);
                std::printf("%12.3f", norm);
            }
            std::printf("\n");
        }

        rule(14 + 12 * schemes.size());
        std::printf("%-14s", "geomean");
        for (Scheme s : schemes)
            std::printf("%12.3f", geomean(norms[s]));
        std::printf("\n");

        std::printf(
            "\n[paper: FENCE avg 1.475 (select/poll up to 3.28),"
            " DOM 1.231, STT 1.037,\n"
            " spot (KPTI+retpoline) 1.145, P-STATIC 1.041, "
            "PERSPECTIVE 1.036, P++ 1.035]\n");
    }
    return sweep.emitOutputs() ? 0 : 1;
}
