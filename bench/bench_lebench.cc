/**
 * @file
 * Figure 9.2: LEBench normalized latency under FENCE and the three
 * Perspective flavors, normalized to UNSAFE; plus the Section 9.1
 * comparisons against DOM, STT, and deployed spot mitigations
 * (KPTI + retpoline).
 */

#include <cstdio>
#include <map>
#include <vector>

#include "common.hh"
#include "workloads/experiment.hh"

using namespace perspective;
using namespace perspective::bench;
using namespace perspective::workloads;

int
main()
{
    banner("Figure 9.2: LEBench normalized latency (lower is better,"
           " 1.00 = UNSAFE)");

    std::vector<Scheme> schemes = {
        Scheme::Fence,           Scheme::Dom,
        Scheme::Stt,             Scheme::InvisiSpec,
        Scheme::Spot,            Scheme::PerspectiveStatic,
        Scheme::Perspective,     Scheme::PerspectivePlusPlus};

    std::printf("%-14s", "benchmark");
    for (Scheme s : schemes)
        std::printf("%12s", schemeName(s));
    std::printf("\n");
    rule(14 + 12 * schemes.size());

    std::map<Scheme, double> sums;
    auto suite = lebenchSuite();
    for (const auto &w : suite) {
        Experiment base(w, Scheme::Unsafe);
        double unsafe_cycles =
            static_cast<double>(base.run(kIterations, kWarmup).cycles);
        std::printf("%-14s", w.name.c_str());
        for (Scheme s : schemes) {
            Experiment e(w, s);
            double norm =
                e.run(kIterations, kWarmup).cycles / unsafe_cycles;
            sums[s] += norm;
            std::printf("%12.3f", norm);
        }
        std::printf("\n");
    }

    rule(14 + 12 * schemes.size());
    std::printf("%-14s", "geomean-ish");
    for (Scheme s : schemes)
        std::printf("%12.3f", sums[s] / suite.size());
    std::printf("\n");

    std::printf("\n[paper: FENCE avg 1.475 (select/poll up to 3.28),"
                " DOM 1.231, STT 1.037,\n"
                " spot (KPTI+retpoline) 1.145, P-STATIC 1.041, "
                "PERSPECTIVE 1.036, P++ 1.035]\n");
    return 0;
}
